"""Solver hot-path benchmark: warm starts, parallel Benders, node throughput.

Three seeded workloads, all deterministic given the config:

* **bb** — random bounded integer programs (dense knapsack-style rows,
  chosen because their LP relaxations branch deep) solved twice through
  the simplex-backed branch and bound: once with LP warm starts (children
  restart phase 2 from the parent basis) and once forced cold.  Both runs
  explore the *same* tree, so the node-throughput ratio isolates the
  warm-start win from search luck.
* **drrp** — a paper DRRP instance (eq. (1)-(7) lot-sizing MILP) solved
  through the same two paths; realistic structure, mostly-integral LP
  relaxations.
* **benders** — an SRRP-style two-stage program with complete recourse,
  solved serially and with the scenario fan-out; per-scenario subproblem
  bases warm the next iteration in both modes.
* **large** — a 200+ var / 60+ row wide multi-class DRRP allocation LP
  (columns dominate rows, the regime production models grow into) solved
  cold once plus a deterministic branching-style sequence of warm
  re-solves, once per pivot engine.  The tableau/revised wall-clock ratio
  on the *same* instance sequence and machine is hardware-independent and
  is gated at ``LARGE_TIER_MIN_SPEEDUP`` — the revised engine must stay
  >= 3x faster than the dense tableau it replaced.

The record is written as ``BENCH_solver.json`` (``REPRO_BENCH_DIR``
honored, like the service bench).  CI compares the **cold-normalized**
node-throughput ratio against the committed baseline — a ratio of
warm-to-cold throughput on the *same* machine cancels hardware speed, so
the gate transfers between laptops and runners (see
:func:`check_solver_regression` and ``docs/performance.md``).

On a single-CPU host the parallel Benders leg cannot beat serial (there
is nothing to fan out onto); the record keeps the measured speedup and
``cpu_count`` so readers and the regression gate can tell "no cores"
from "regression".
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, replace as dc_replace
from pathlib import Path

import numpy as np

from repro.obs.spans import span
from repro.parallel.pool import default_workers
from repro.solver import BranchAndBoundOptions, SolverStatus, solve_compiled
from repro.solver.benders import BendersOptions, Scenario, TwoStageProblem, solve_benders
from repro.solver.model import CompiledProblem
from repro.solver.telemetry import Telemetry

__all__ = [
    "SolverBenchConfig",
    "run_solver_bench",
    "check_solver_regression",
    "summary_lines",
    "write_bench_record",
]

#: Gate: fail CI when the current warm/cold throughput ratio drops below
#: this fraction of the committed baseline's ratio.
REGRESSION_TOLERANCE = 0.75

#: Gate: floor on the tableau/revised wall-clock ratio of the large tier.
#: Same sequence, same machine — the ratio transfers across hosts.
LARGE_TIER_MIN_SPEEDUP = 3.0
#: The speedup gate only means something while the tier stays large; a
#: record whose tier shrank below these sizes fails against a baseline
#: whose tier was large.
LARGE_TIER_MIN_VARS = 200
LARGE_TIER_MIN_ROWS = 60


@dataclass(frozen=True)
class SolverBenchConfig:
    """One benchmark run (defaults match the committed baseline)."""

    seed: int = 0
    bb_instances: int = 3
    bb_vars: int = 24
    bb_rows: int = 20
    node_limit: int = 2000
    drrp_horizon: int = 24
    scenarios: int = 12
    recourse_rows: int = 30
    recourse_vars: int = 60
    benders_workers: int | None = None  # None -> repro.parallel.default_workers()
    large_horizon: int = 48  # periods in the large (wide) DRRP tier
    large_classes: int = 8  # instance classes per period (2 tiers each)
    large_resolves: int = 60  # warm re-solves per engine on the large tier
    out: str | None = "BENCH_solver.json"

    def __post_init__(self) -> None:
        if self.scenarios < 8:
            raise ValueError(
                f"benders leg needs >= 8 scenarios to be meaningful, got {self.scenarios}"
            )
        if self.bb_instances < 1 or self.bb_vars < 2 or self.bb_rows < 1:
            raise ValueError("bb workload must have >= 1 instance and a nonempty LP")
        if self.large_horizon < 2 or self.large_classes < 1 or self.large_resolves < 1:
            raise ValueError(
                "large tier needs >= 2 periods, >= 1 class and >= 1 warm re-solve"
            )


def _random_milp(rng: np.random.Generator, n: int, m: int) -> CompiledProblem:
    """Dense bounded integer program whose relaxation branches deep."""
    c = -rng.uniform(1.0, 5.0, n)  # maximize profit, compiled as min -c'x
    A = rng.uniform(0.0, 3.0, (m, n))
    b = rng.uniform(0.75 * n, 1.8 * n, m)
    return CompiledProblem(
        c=c, c0=0.0, A_ub=A, b_ub=b,
        A_eq=np.zeros((0, n)), b_eq=np.zeros(0),
        lb=np.zeros(n), ub=np.full(n, 6.0),
        integrality=np.ones(n, dtype=int), maximize=False, variables=[],
    )


def _drrp_problem(cfg: SolverBenchConfig) -> tuple[CompiledProblem, np.ndarray]:
    """Paper DRRP instance plus its Wagner-Whitin incumbent.

    Mirrors ``solve_drrp(warm_start=True)``: without the polynomial-time
    incumbent, best-first B&B on the balance equalities prunes almost
    nothing and the leg would just burn its node limit.
    """
    from repro.core import DRRPInstance, NormalDemand, on_demand_schedule
    from repro.core.drrp import build_drrp_model
    from repro.core.lotsizing import solve_wagner_whitin
    from repro.market import ec2_catalog

    vm = ec2_catalog()["m1.large"]
    demand = NormalDemand(mean=0.4, std=0.2).sample(cfg.drrp_horizon, cfg.seed)
    inst = DRRPInstance(
        demand=demand, costs=on_demand_schedule(vm, cfg.drrp_horizon), vm_name=vm.name
    )
    model, _ = build_drrp_model(inst)
    ww = solve_wagner_whitin(inst)
    x0 = np.concatenate([ww.alpha, ww.beta, ww.chi])
    return model.compile(), x0


def _large_problem(cfg: SolverBenchConfig) -> CompiledProblem:
    """Wide multi-class DRRP allocation LP for the engine-ratio tier.

    ``large_horizon`` periods x ``large_classes`` instance classes x two
    rental tiers (reserved-rate, on-demand-rate): per period a coverage row
    (weighted capacity across all classes meets demand) and a reserved-
    market availability row.  Columns dominate rows (n = 2*K*T vs m = 2*T)
    — the regime scaled-up DRRP portfolios live in, and the one that
    separates the engines: dense-tableau pivots cost O(m*n) while factored
    revised pivots cost O(m^2 + n).  All variables carry finite upper
    bounds so at-upper statuses and bound flips are exercised.
    """
    rng = np.random.default_rng(cfg.seed + 101)
    T, K = cfg.large_horizon, cfg.large_classes
    n = 2 * K * T
    cap = rng.uniform(1.0, 4.0, K)  # effective capacity per instance class
    price_res = rng.uniform(0.5, 1.5, K)
    price_od = price_res * rng.uniform(1.5, 2.5, K)  # on-demand premium
    demand = np.maximum(rng.normal(0.4, 0.2, T), 0.05) * cap.sum() * 1.5
    res_cap = rng.uniform(0.3, 0.8, T) * cap.sum() * 1.2
    c = np.empty(n)
    A_ub = np.zeros((2 * T, n))
    b_ub = np.empty(2 * T)
    for t in range(T):
        base = t * 2 * K
        c[base : base + K] = price_res
        c[base + K : base + 2 * K] = price_od
        # Coverage: sum_k cap_k * (res_{k,t} + od_{k,t}) >= demand_t.
        A_ub[t, base : base + K] = -cap
        A_ub[t, base + K : base + 2 * K] = -cap
        b_ub[t] = -demand[t]
        # Reserved-market availability: sum_k cap_k * res_{k,t} <= R_t.
        A_ub[T + t, base : base + K] = cap
        b_ub[T + t] = res_cap[t]
    return CompiledProblem(
        c=c, c0=0.0, A_ub=A_ub, b_ub=b_ub,
        A_eq=np.zeros((0, n)), b_eq=np.zeros(0),
        lb=np.zeros(n), ub=np.full(n, 3.0),
        integrality=np.zeros(n, dtype=int), maximize=False, variables=[],
    )


def _large_engine_run(
    prob: CompiledProblem,
    engine: str,
    resolves: int,
    seed: int,
    telemetry: Telemetry | None = None,
) -> dict:
    """One cold root solve plus a branching-style warm re-solve sequence.

    The sequence (which variable's bound tightens, and which way) is fully
    determined by ``seed``, so both engines replay the *same* LPs and their
    wall-clock ratio isolates the engine, not the workload.  Returns the
    leg stats plus the per-solve objectives for the cross-engine agreement
    check (``None`` marks an infeasible child).
    """
    from repro.solver.simplex import solve_lp_simplex

    rng = np.random.default_rng(seed)
    t0 = time.perf_counter()
    root = solve_lp_simplex(prob, telemetry=telemetry, engine=engine)
    if root.status is not SolverStatus.OPTIMAL:
        raise RuntimeError(f"large-tier root LP terminated {root.status.value} ({engine})")
    basis = root.extra["basis"]
    x = root.x
    pivots = root.iterations
    warm_used = 0
    objectives: list[float | None] = [float(root.objective)]
    for _ in range(resolves):
        j = int(rng.integers(prob.num_vars))
        lb2, ub2 = prob.lb.copy(), prob.ub.copy()
        if rng.integers(2):
            ub2[j] = max(prob.lb[j], x[j] * 0.5)
        else:
            lb2[j] = min(prob.ub[j], x[j] * 0.5 + 0.2)
        child = dc_replace(prob, lb=lb2, ub=ub2)
        res = solve_lp_simplex(child, warm_start=basis, telemetry=telemetry, engine=engine)
        pivots += res.iterations
        if res.status is SolverStatus.OPTIMAL:
            objectives.append(float(res.objective))
        elif res.status is SolverStatus.INFEASIBLE:
            objectives.append(None)
        else:
            raise RuntimeError(
                f"large-tier child LP terminated {res.status.value} ({engine})"
            )
        warm_used += int(bool((res.extra.get("warm") or {}).get("used")))
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "pivots": pivots,
        "warm_used": warm_used,
        "resolves": resolves,
        "objectives": objectives,
    }


def _two_stage(cfg: SolverBenchConfig) -> TwoStageProblem:
    """SRRP-shaped two-stage program with complete recourse (elastic W)."""
    rng = np.random.default_rng(cfg.seed + 17)
    n, m, ny0, S = 8, cfg.recourse_rows, cfg.recourse_vars, cfg.scenarios
    c = rng.uniform(1.0, 4.0, n)
    A_ub = rng.uniform(0.0, 1.0, (3, n))
    b_ub = rng.uniform(6.0, 10.0, 3)
    scenarios = []
    for _ in range(S):
        W0 = rng.uniform(0.1, 1.0, (m, ny0))
        W = np.hstack([W0, np.eye(m), -np.eye(m)])
        T = rng.uniform(0.0, 0.5, (m, n))
        h = rng.uniform(2.0, 8.0, m)
        q = np.concatenate([rng.uniform(0.5, 2.0, ny0), np.full(2 * m, 6.0)])
        y_ub = np.concatenate([rng.uniform(0.5, 3.0, ny0), np.full(2 * m, np.inf)])
        scenarios.append(Scenario(prob=1.0 / S, q=q, W=W, T=T, h=h, y_ub=y_ub))
    return TwoStageProblem(
        c=c, lb=np.zeros(n), ub=np.full(n, 5.0),
        integrality=np.zeros(n, dtype=int), scenarios=scenarios,
        A_ub=A_ub, b_ub=b_ub,
    )


def _bb_leg(
    problems: list[CompiledProblem],
    warm: bool,
    node_limit: int,
    incumbent: np.ndarray | None = None,
    telemetry: Telemetry | None = None,
) -> dict:
    wall = 0.0
    nodes = pivots = lp_warm = lp_cold = 0
    objectives = []
    for p in problems:
        opts = BranchAndBoundOptions(
            warm_start_lps=warm, node_limit=node_limit, initial_incumbent=incumbent
        )
        t0 = time.perf_counter()
        res = solve_compiled(p, backend="simplex", bb_options=opts, listener=telemetry)
        wall += time.perf_counter() - t0
        if res.status not in (SolverStatus.OPTIMAL, SolverStatus.NODE_LIMIT, SolverStatus.FEASIBLE):
            raise RuntimeError(f"bench MILP terminated {res.status.value}")
        nodes += res.nodes
        pivots += res.iterations
        lp_warm += int(res.extra.get("lp_warm", 0))
        lp_cold += int(res.extra.get("lp_cold", 0))
        objectives.append(float(res.objective))
    solves = lp_warm + lp_cold
    return {
        "wall_s": wall,
        "nodes": nodes,
        "nodes_per_sec": nodes / wall if wall > 0 else 0.0,
        "pivots": pivots,
        "pivots_per_solve": pivots / solves if solves else 0.0,
        "lp_warm": lp_warm,
        "lp_cold": lp_cold,
        "warm_hit_rate": lp_warm / solves if solves else 0.0,
        "objectives": objectives,
    }


def _benders_leg(tsp: TwoStageProblem, workers: int,
                 telemetry: Telemetry | None = None) -> dict:
    opts = BendersOptions(n_workers=workers)
    t0 = time.perf_counter()
    res = solve_benders(tsp, options=opts, listener=telemetry)
    wall = time.perf_counter() - t0
    if res.status is not SolverStatus.OPTIMAL:
        raise RuntimeError(f"bench Benders terminated {res.status.value}")
    return {
        "wall_s": wall,
        "iterations": res.nodes,
        "workers": int(res.extra.get("workers", workers)),
        "subproblem_warm_hits": int(res.extra.get("subproblem_warm_hits", 0)),
        "objective": float(res.objective),
    }


def run_solver_bench(cfg: SolverBenchConfig | None = None, listener=None) -> dict:
    """Run all three workloads and return (and optionally write) the record.

    ``listener`` attaches solver telemetry to the whole run: every leg is
    bracketed in its own span under one root ``bench_solver`` span, so
    :func:`repro.obs.prof.profile_events` can attribute essentially all of
    the bench's wall time (``repro profile bench-solver``).
    """
    cfg = cfg or SolverBenchConfig()
    hub = Telemetry.from_listener(listener)
    rng = np.random.default_rng(cfg.seed)
    problems = [
        _random_milp(rng, cfg.bb_vars, cfg.bb_rows) for _ in range(cfg.bb_instances)
    ]

    with span(hub, "bench_solver", seed=cfg.seed):
        with span(hub, "bench_leg[bb_warm]"):
            bb_warm = _bb_leg(problems, warm=True, node_limit=cfg.node_limit,
                              telemetry=hub)
        with span(hub, "bench_leg[bb_cold]"):
            bb_cold = _bb_leg(problems, warm=False, node_limit=cfg.node_limit,
                              telemetry=hub)
        if not np.allclose(bb_warm["objectives"], bb_cold["objectives"], rtol=1e-7, atol=1e-7):
            raise RuntimeError(
                "warm and cold B&B disagree on bench optima: "
                f"{bb_warm['objectives']} vs {bb_cold['objectives']}"
            )

        drrp_prob, drrp_x0 = _drrp_problem(cfg)
        with span(hub, "bench_leg[drrp_warm]"):
            drrp_warm = _bb_leg([drrp_prob], warm=True, node_limit=cfg.node_limit,
                                incumbent=drrp_x0, telemetry=hub)
        with span(hub, "bench_leg[drrp_cold]"):
            drrp_cold = _bb_leg([drrp_prob], warm=False, node_limit=cfg.node_limit,
                                incumbent=drrp_x0, telemetry=hub)
        if not np.allclose(drrp_warm["objectives"], drrp_cold["objectives"], rtol=1e-7, atol=1e-7):
            raise RuntimeError(
                "warm and cold B&B disagree on the DRRP leg: "
                f"{drrp_warm['objectives']} vs {drrp_cold['objectives']}"
            )

        large_prob = _large_problem(cfg)
        with span(hub, "bench_leg[large_revised]"):
            large_revised = _large_engine_run(
                large_prob, "revised", cfg.large_resolves, cfg.seed + 7, telemetry=hub
            )
        with span(hub, "bench_leg[large_tableau]"):
            large_tableau = _large_engine_run(
                large_prob, "tableau", cfg.large_resolves, cfg.seed + 7, telemetry=hub
            )
        for o_r, o_t in zip(large_revised["objectives"], large_tableau["objectives"]):
            if (o_r is None) != (o_t is None) or (
                o_r is not None and abs(o_r - o_t) > 1e-6 * (1.0 + abs(o_t))
            ):
                raise RuntimeError(
                    "revised and tableau engines disagree on the large tier: "
                    f"{o_r} vs {o_t}"
                )

        tsp = _two_stage(cfg)
        workers = cfg.benders_workers if cfg.benders_workers is not None else default_workers()
        with span(hub, "bench_leg[benders_serial]"):
            benders_serial = _benders_leg(tsp, workers=1, telemetry=hub)
        with span(hub, "bench_leg[benders_parallel]"):
            benders_parallel = _benders_leg(tsp, workers=max(2, workers), telemetry=hub)
    if abs(benders_serial["objective"] - benders_parallel["objective"]) > 1e-6 * max(
        1.0, abs(benders_serial["objective"])
    ):
        raise RuntimeError(
            "serial and parallel Benders disagree: "
            f"{benders_serial['objective']} vs {benders_parallel['objective']}"
        )

    record = {
        "benchmark": "solver",
        "seed": cfg.seed,
        "config": {
            "bb_instances": cfg.bb_instances,
            "bb_vars": cfg.bb_vars,
            "bb_rows": cfg.bb_rows,
            "node_limit": cfg.node_limit,
            "drrp_horizon": cfg.drrp_horizon,
            "scenarios": cfg.scenarios,
            "recourse_rows": cfg.recourse_rows,
            "recourse_vars": cfg.recourse_vars,
            "large_horizon": cfg.large_horizon,
            "large_classes": cfg.large_classes,
            "large_resolves": cfg.large_resolves,
        },
        "cpu_count": os.cpu_count() or 1,
        "bb": {
            "warm": bb_warm,
            "cold": bb_cold,
            # Cold-normalized: warm and cold ran the same tree on the same
            # machine, so this ratio is hardware-independent — it is what
            # the CI regression gate compares.
            "node_throughput_ratio": (
                bb_warm["nodes_per_sec"] / bb_cold["nodes_per_sec"]
                if bb_cold["nodes_per_sec"] > 0 else 0.0
            ),
        },
        "drrp": {"warm": drrp_warm, "cold": drrp_cold},
        "large": {
            "vars": int(large_prob.num_vars),
            "rows": int(large_prob.A_ub.shape[0] + large_prob.A_eq.shape[0]),
            "resolves": cfg.large_resolves,
            "revised": {k: v for k, v in large_revised.items() if k != "objectives"},
            "tableau": {k: v for k, v in large_tableau.items() if k != "objectives"},
            # Same instance sequence, same machine: this ratio is the
            # hardware-independent engine gate.
            "speedup": (
                large_tableau["wall_s"] / large_revised["wall_s"]
                if large_revised["wall_s"] > 0 else 0.0
            ),
        },
        "benders": {
            "scenarios": cfg.scenarios,
            "serial": benders_serial,
            "parallel": benders_parallel,
            "speedup": (
                benders_serial["wall_s"] / benders_parallel["wall_s"]
                if benders_parallel["wall_s"] > 0 else 0.0
            ),
        },
        "created": time.time(),
    }
    if cfg.out:
        record["path"] = str(write_bench_record(record, cfg.out))
    return record


def write_bench_record(record: dict, out: str = "BENCH_solver.json") -> Path:
    from repro.serialize import jsonable

    out_dir = Path(os.environ.get("REPRO_BENCH_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / out
    # jsonable maps non-finite floats to strings so the record always parses.
    path.write_text(
        json.dumps(jsonable(record), indent=2, allow_nan=False, sort_keys=True) + "\n"
    )
    return path


def check_solver_regression(
    record: dict, baseline: dict, tolerance: float = REGRESSION_TOLERANCE
) -> list[str]:
    """Compare a fresh record against the committed baseline.

    Returns human-readable failure strings (empty = pass).  Only
    machine-independent ratios are gated; absolute wall times are recorded
    for humans but never compared across hosts.  The Benders speedup is
    gated only when the current host actually has >= 2 CPUs.
    """
    failures: list[str] = []
    cur = float(record["bb"]["node_throughput_ratio"])
    base = float(baseline["bb"]["node_throughput_ratio"])
    if cur < tolerance * base:
        failures.append(
            f"bb node-throughput ratio regressed: {cur:.2f}x vs baseline "
            f"{base:.2f}x (floor {tolerance * base:.2f}x)"
        )
    # Absolute floor, but only when the baseline itself cleared it: tiny
    # smoke configurations are timing-noisy enough that warm can measure
    # below cold, and a record must always pass against itself.
    if cur < 1.0 <= base:
        failures.append(f"warm starts slower than cold ({cur:.2f}x)")
    warm_rate = float(record["bb"]["warm"]["warm_hit_rate"])
    base_rate = float(baseline["bb"]["warm"]["warm_hit_rate"])
    if warm_rate < tolerance * base_rate:
        failures.append(
            f"warm-hit rate regressed: {warm_rate:.0%} vs baseline {base_rate:.0%}"
        )
    if int(record.get("cpu_count", 1)) >= 2 and float(record["benders"]["speedup"]) <= 1.0:
        failures.append(
            f"parallel Benders no faster than serial on a "
            f"{record['cpu_count']}-CPU host (speedup "
            f"{record['benders']['speedup']:.2f}x)"
        )
    large = record.get("large")
    base_large = baseline.get("large")

    def _is_big(leg: dict) -> bool:
        return (
            int(leg.get("vars", 0)) >= LARGE_TIER_MIN_VARS
            and int(leg.get("rows", 0)) >= LARGE_TIER_MIN_ROWS
        )

    if large is None:
        if base_large is not None:
            failures.append("record is missing the large engine-ratio tier")
    else:
        if _is_big(large):
            speedup = float(large["speedup"])
            if speedup < LARGE_TIER_MIN_SPEEDUP:
                failures.append(
                    f"large-tier revised-engine speedup {speedup:.2f}x is below "
                    f"the {LARGE_TIER_MIN_SPEEDUP:.1f}x floor (tableau "
                    f"{large['tableau']['wall_s'] * 1e3:.0f} ms vs revised "
                    f"{large['revised']['wall_s'] * 1e3:.0f} ms on "
                    f"{large['vars']} vars / {large['rows']} rows)"
                )
            warm_hits = int(large["revised"]["warm_used"])
            if warm_hits < int(large["resolves"]):
                failures.append(
                    f"large-tier revised warm hits {warm_hits}/"
                    f"{large['resolves']}: warm bases are being rejected"
                )
        elif base_large is not None and _is_big(base_large):
            failures.append(
                f"large tier shrank to {large.get('vars', 0)} vars / "
                f"{large.get('rows', 0)} rows (floor {LARGE_TIER_MIN_VARS} / "
                f"{LARGE_TIER_MIN_ROWS}); the engine-ratio gate is meaningless"
            )
    return failures


def summary_lines(record: dict) -> list[str]:
    bb = record["bb"]
    bd = record["benders"]
    lines = [
        (
            f"bb: warm {bb['warm']['nodes_per_sec']:.0f} nodes/s "
            f"vs cold {bb['cold']['nodes_per_sec']:.0f} nodes/s "
            f"({bb['node_throughput_ratio']:.2f}x), "
            f"warm-hit {bb['warm']['warm_hit_rate']:.0%}, "
            f"pivots/solve {bb['warm']['pivots_per_solve']:.1f} warm "
            f"vs {bb['cold']['pivots_per_solve']:.1f} cold"
        ),
        (
            f"drrp: warm {record['drrp']['warm']['wall_s'] * 1e3:.0f} ms "
            f"vs cold {record['drrp']['cold']['wall_s'] * 1e3:.0f} ms "
            f"({record['drrp']['warm']['nodes']} nodes)"
        ),
        (
            f"benders: {bd['scenarios']} scenarios, serial "
            f"{bd['serial']['wall_s'] * 1e3:.0f} ms vs parallel "
            f"{bd['parallel']['wall_s'] * 1e3:.0f} ms on "
            f"{bd['parallel']['workers']} workers ({bd['speedup']:.2f}x, "
            f"{record['cpu_count']} CPUs), warm hits "
            f"{bd['parallel']['subproblem_warm_hits']}/"
            f"{bd['scenarios'] * bd['parallel']['iterations']}"
        ),
    ]
    lg = record.get("large")
    if lg is not None:
        lines.append(
            f"large: {lg['vars']} vars / {lg['rows']} rows, revised "
            f"{lg['revised']['wall_s'] * 1e3:.0f} ms vs tableau "
            f"{lg['tableau']['wall_s'] * 1e3:.0f} ms ({lg['speedup']:.2f}x), "
            f"warm {lg['revised']['warm_used']}/{lg['resolves']}"
        )
    return lines
