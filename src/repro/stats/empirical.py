"""Empirical distributions, quantiles, and box-whisker outlier analysis.

Implements the statistics behind two parts of the paper:

* Figure 3's box-and-whisker outlier identification ("points beyond
  1.5 IQR of the upper quartile", with the observed <3 % outlier share);
* the *base probability distribution* of §IV-C — "the summarized discrete
  probability distribution over a selected historical price series" — which
  the bid-dependent dynamic sampling of SRRP truncates at the bid price.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["five_number_summary", "iqr_outliers", "BoxWhiskerStats", "EmpiricalDistribution"]


@dataclass(frozen=True)
class BoxWhiskerStats:
    """Box-and-whisker summary of one sample (Tukey fences at 1.5·IQR)."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    lower_fence: float
    upper_fence: float
    n_outliers: int
    n_total: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def outlier_fraction(self) -> float:
        return self.n_outliers / self.n_total if self.n_total else 0.0


def five_number_summary(sample: np.ndarray) -> tuple[float, float, float, float, float]:
    """(min, Q1, median, Q3, max) with linear-interpolation quantiles."""
    sample = np.asarray(sample, dtype=float)
    if sample.size == 0:
        raise ValueError("empty sample")
    q1, med, q3 = np.percentile(sample, [25, 50, 75])
    return float(sample.min()), float(q1), float(med), float(q3), float(sample.max())


def iqr_outliers(sample: np.ndarray, k: float = 1.5) -> tuple[np.ndarray, BoxWhiskerStats]:
    """Tukey outlier mask and the box-whisker summary.

    Parameters
    ----------
    sample:
        Observations (1-D).
    k:
        Fence multiplier; 1.5 is the paper's (and Tukey's) convention.

    Returns
    -------
    mask, stats:
        Boolean array marking outliers, and the summary statistics.
    """
    sample = np.asarray(sample, dtype=float)
    mn, q1, med, q3, mx = five_number_summary(sample)
    iqr = q3 - q1
    lo, hi = q1 - k * iqr, q3 + k * iqr
    mask = (sample < lo) | (sample > hi)
    stats = BoxWhiskerStats(
        minimum=mn, q1=q1, median=med, q3=q3, maximum=mx,
        lower_fence=lo, upper_fence=hi,
        n_outliers=int(mask.sum()), n_total=sample.size,
    )
    return mask, stats


class EmpiricalDistribution:
    """Discrete distribution summarized from observations.

    Observations are grouped into their distinct values (optionally rounded
    to ``decimals`` to merge near-ties, mirroring how spot prices quantize to
    $0.001) with relative frequencies as probabilities.  This is exactly the
    paper's *base distribution* input to SRRP's scenario sampling.
    """

    def __init__(self, observations: np.ndarray, decimals: int | None = 4) -> None:
        obs = np.asarray(observations, dtype=float)
        if obs.size == 0:
            raise ValueError("cannot summarize an empty series")
        if decimals is not None:
            obs = np.round(obs, decimals)
        values, counts = np.unique(obs, return_counts=True)
        self.values: np.ndarray = values              # ascending, unique
        self.probabilities: np.ndarray = counts / counts.sum()
        self._cdf = np.cumsum(self.probabilities)

    # -- basic queries --------------------------------------------------------
    @property
    def support_size(self) -> int:
        return self.values.size

    def mean(self) -> float:
        return float(self.values @ self.probabilities)

    def var(self) -> float:
        mu = self.mean()
        return float(((self.values - mu) ** 2) @ self.probabilities)

    def std(self) -> float:
        return float(np.sqrt(self.var()))

    def cdf(self, x: float) -> float:
        """P(X <= x)."""
        idx = np.searchsorted(self.values, x, side="right")
        return float(self._cdf[idx - 1]) if idx > 0 else 0.0

    def quantile(self, p: float) -> float:
        """Smallest support value with CDF >= p."""
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        idx = int(np.searchsorted(self._cdf, p, side="left"))
        idx = min(idx, self.values.size - 1)
        return float(self.values[idx])

    def prob_above(self, x: float) -> float:
        """P(X > x) — in SRRP terms, the out-of-bid probability at bid ``x``."""
        return 1.0 - self.cdf(x)

    # -- transforms used by SRRP ----------------------------------------------
    def truncate_at_bid(self, bid: float, overflow_value: float) -> "EmpiricalDistribution":
        """Bid-dependent dynamic sampling (paper eq. (10)).

        Keep the mass of support values ``<= bid``; move all remaining mass
        onto ``overflow_value`` (the on-demand price λ, the cost incurred on
        an out-of-bid event).
        """
        keep = self.values <= bid
        vals = list(self.values[keep])
        probs = list(self.probabilities[keep])
        overflow = 1.0 - sum(probs)
        if overflow > 1e-12:
            if vals and np.isclose(overflow_value, vals[-1]):
                probs[-1] += overflow
            else:
                vals.append(overflow_value)
                probs.append(overflow)
        out = object.__new__(EmpiricalDistribution)
        order = np.argsort(vals)
        out.values = np.asarray(vals, dtype=float)[order]
        out.probabilities = np.asarray(probs, dtype=float)[order]
        out._cdf = np.cumsum(out.probabilities)
        return out

    def coarsen(self, max_support: int) -> "EmpiricalDistribution":
        """Reduce support to ``max_support`` points by probability-weighted
        merging of adjacent quantile cells (keeps mean approximately).

        Scenario trees grow as ``support^T``; coarsening is how callers keep
        the SRRP deterministic equivalent tractable (§V-A uses short
        horizons for the same reason).
        """
        if max_support < 1:
            raise ValueError("max_support must be >= 1")
        if self.support_size <= max_support:
            return self
        edges = np.linspace(0.0, 1.0, max_support + 1)
        cell = np.clip(np.searchsorted(edges, self._cdf, side="left"), 1, max_support) - 1
        vals = np.zeros(max_support)
        probs = np.zeros(max_support)
        for i in range(self.support_size):
            c = cell[i]
            probs[c] += self.probabilities[i]
            vals[c] += self.probabilities[i] * self.values[i]
        keep = probs > 0
        vals = vals[keep] / probs[keep]
        out = object.__new__(EmpiricalDistribution)
        out.values = vals
        out.probabilities = probs[keep]
        out._cdf = np.cumsum(out.probabilities)
        return out

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw iid samples from the discrete distribution."""
        return rng.choice(self.values, size=size, p=self.probabilities)

    def __repr__(self) -> str:
        return (
            f"EmpiricalDistribution(support={self.support_size}, "
            f"mean={self.mean():.4f}, std={self.std():.4f})"
        )
