"""Statistics substrate: empirical distributions, KDE, normality tests,
descriptive summaries, and deterministic RNG plumbing."""

from .empirical import BoxWhiskerStats, EmpiricalDistribution, five_number_summary, iqr_outliers
from .kde import GaussianKDE, histogram, silverman_bandwidth
from .normality import NormalityResult, jarque_bera, normal_fit, normal_pdf, shapiro_wilk
from .descriptive import SeriesSummary, mape, mspe, relative_change, summarize
from .rng import ensure_rng, spawn_rngs, truncated_normal

__all__ = [
    "BoxWhiskerStats",
    "EmpiricalDistribution",
    "five_number_summary",
    "iqr_outliers",
    "GaussianKDE",
    "histogram",
    "silverman_bandwidth",
    "NormalityResult",
    "jarque_bera",
    "normal_fit",
    "normal_pdf",
    "shapiro_wilk",
    "SeriesSummary",
    "mape",
    "mspe",
    "relative_change",
    "summarize",
    "ensure_rng",
    "spawn_rngs",
    "truncated_normal",
]
