"""Normality testing for spot-price windows (paper §IV-A2, Figure 5).

The paper rejects normality of the selected price series via the
Shapiro–Wilk test.  We provide:

* :func:`jarque_bera` — implemented from scratch (skewness/kurtosis based);
* :func:`shapiro_wilk` — delegated to :mod:`scipy.stats` (the reference
  implementation of the W statistic);
* :func:`normal_fit` — the mean/variance normal approximation the paper
  overlays in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
try:
    from scipy import stats as scistats
except ImportError:  # tests that need it are scipy-gated
    scistats = None


def _require_scipy(caller: str) -> None:
    if scistats is None:
        raise ImportError(
            f"{caller} requires scipy (scipy.stats); install scipy or avoid the "
            "normality tests on this machine"
        )

__all__ = ["NormalityResult", "jarque_bera", "shapiro_wilk", "normal_fit", "normal_pdf"]


@dataclass(frozen=True)
class NormalityResult:
    """Outcome of a normality test."""

    statistic: float
    p_value: float
    test: str

    def rejects_normality(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def jarque_bera(sample: np.ndarray) -> NormalityResult:
    """Jarque–Bera test: ``JB = n/6 (S^2 + K^2/4)`` ~ chi2(2) under H0.

    ``S`` is sample skewness and ``K`` excess kurtosis, both computed with
    biased (moment) estimators as in the original test.
    """
    x = np.asarray(sample, dtype=float).ravel()
    n = x.size
    if n < 8:
        raise ValueError("Jarque-Bera needs at least 8 observations")
    mu = x.mean()
    centered = x - mu
    m2 = np.mean(centered**2)
    if m2 == 0:
        # constant series: maximally non-normal in the degenerate sense
        return NormalityResult(statistic=np.inf, p_value=0.0, test="jarque-bera")
    m3 = np.mean(centered**3)
    m4 = np.mean(centered**4)
    skew = m3 / m2**1.5
    kurt = m4 / m2**2 - 3.0
    jb = n / 6.0 * (skew**2 + kurt**2 / 4.0)
    _require_scipy("jarque_bera")
    p = float(scistats.chi2.sf(jb, df=2))
    return NormalityResult(statistic=float(jb), p_value=p, test="jarque-bera")


def shapiro_wilk(sample: np.ndarray) -> NormalityResult:
    """Shapiro–Wilk W test (the test the paper reports)."""
    x = np.asarray(sample, dtype=float).ravel()
    if x.size < 3:
        raise ValueError("Shapiro-Wilk needs at least 3 observations")
    # scipy warns above 5000 samples; subsample deterministically like R does not,
    # but keep the test well-defined for long windows.
    if x.size > 5000:
        idx = np.linspace(0, x.size - 1, 5000).astype(int)
        x = x[idx]
    _require_scipy("shapiro_wilk")
    stat, p = scistats.shapiro(x)
    return NormalityResult(statistic=float(stat), p_value=float(p), test="shapiro-wilk")


def normal_fit(sample: np.ndarray) -> tuple[float, float]:
    """Mean and standard deviation of the matched normal approximation."""
    x = np.asarray(sample, dtype=float)
    return float(x.mean()), float(x.std(ddof=1))


def normal_pdf(x: np.ndarray, mean: float, std: float) -> np.ndarray:
    """Density of N(mean, std^2), vectorized."""
    x = np.asarray(x, dtype=float)
    z = (x - mean) / std
    return np.exp(-0.5 * z * z) / (std * np.sqrt(2 * np.pi))
