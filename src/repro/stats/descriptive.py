"""Descriptive statistics helpers shared across experiment modules."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeriesSummary", "summarize", "mspe", "mape", "relative_change"]


@dataclass(frozen=True)
class SeriesSummary:
    """Compact numeric summary of a 1-D series."""

    n: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    def as_row(self) -> dict[str, float]:
        """Flat dict form, convenient for tabular experiment output."""
        return {
            "n": self.n, "mean": self.mean, "std": self.std,
            "min": self.minimum, "q1": self.q1, "median": self.median,
            "q3": self.q3, "max": self.maximum,
        }


def summarize(sample: np.ndarray) -> SeriesSummary:
    """Standard eight-number summary."""
    x = np.asarray(sample, dtype=float).ravel()
    if x.size == 0:
        raise ValueError("empty sample")
    q1, med, q3 = np.percentile(x, [25, 50, 75])
    return SeriesSummary(
        n=int(x.size), mean=float(x.mean()), std=float(x.std(ddof=1)) if x.size > 1 else 0.0,
        minimum=float(x.min()), q1=float(q1), median=float(med), q3=float(q3),
        maximum=float(x.max()),
    )


def mspe(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean squared prediction error — the paper's forecast accuracy metric."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ValueError(f"shape mismatch {a.shape} vs {p.shape}")
    return float(np.mean((a - p) ** 2))


def mape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute percentage error (secondary diagnostic)."""
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if np.any(a == 0):
        raise ValueError("MAPE undefined when actual values contain zeros")
    return float(np.mean(np.abs((a - p) / a)))


def relative_change(new: float, base: float) -> float:
    """(new - base) / base; used for overpay percentages in Fig. 12(a)."""
    if base == 0:
        raise ValueError("relative change undefined for zero base")
    return (new - base) / base
