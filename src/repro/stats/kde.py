"""Gaussian kernel density estimation (Figure 5's density curve).

A small, vectorized KDE: the paper overlays an empirical density over the
price histogram and contrasts it with a normal fit of the same mean and
variance.  Bandwidth defaults to Silverman's rule of thumb.
"""

from __future__ import annotations

import numpy as np

__all__ = ["silverman_bandwidth", "GaussianKDE", "histogram"]


def silverman_bandwidth(sample: np.ndarray) -> float:
    """Silverman's rule-of-thumb bandwidth ``0.9 min(sd, IQR/1.34) n^{-1/5}``."""
    sample = np.asarray(sample, dtype=float)
    n = sample.size
    if n < 2:
        raise ValueError("need at least two observations")
    sd = float(np.std(sample, ddof=1))
    q75, q25 = np.percentile(sample, [75, 25])
    iqr = q75 - q25
    spread = min(sd, iqr / 1.34) if iqr > 0 else sd
    if spread <= 0:
        spread = max(abs(float(np.mean(sample))), 1.0) * 1e-3  # degenerate sample
    return 0.9 * spread * n ** (-1 / 5)


class GaussianKDE:
    """Gaussian-kernel density estimator.

    Evaluation is a broadcasted ``(m, n)`` kernel matrix reduced over the
    sample axis — one vectorized pass, no Python loops (HPC guide idiom).
    """

    def __init__(self, sample: np.ndarray, bandwidth: float | None = None) -> None:
        self.sample = np.asarray(sample, dtype=float).ravel()
        if self.sample.size < 2:
            raise ValueError("need at least two observations")
        self.bandwidth = bandwidth if bandwidth is not None else silverman_bandwidth(self.sample)
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")

    def __call__(self, x: np.ndarray | float) -> np.ndarray:
        x = np.atleast_1d(np.asarray(x, dtype=float))
        z = (x[:, None] - self.sample[None, :]) / self.bandwidth
        dens = np.exp(-0.5 * z * z).sum(axis=1)
        dens /= self.sample.size * self.bandwidth * np.sqrt(2 * np.pi)
        return dens

    def grid(self, num: int = 256, pad: float = 3.0) -> tuple[np.ndarray, np.ndarray]:
        """Evaluate on an evenly spaced grid padded by ``pad`` bandwidths."""
        lo = self.sample.min() - pad * self.bandwidth
        hi = self.sample.max() + pad * self.bandwidth
        xs = np.linspace(lo, hi, num)
        return xs, self(xs)


def histogram(sample: np.ndarray, bins: int = 30) -> tuple[np.ndarray, np.ndarray]:
    """Counts and bin edges (thin wrapper kept for a stable public API)."""
    counts, edges = np.histogram(np.asarray(sample, dtype=float), bins=bins)
    return counts, edges
