"""Deterministic RNG plumbing.

Every stochastic component of the library (trace generation, demand
sampling, experiment sweeps) takes either a seed or a Generator and routes
it through here, so whole experiments replay bit-identically.  Independent
child streams come from :func:`numpy.random.SeedSequence.spawn`, the
recommended way to give parallel workers non-overlapping streams.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs", "truncated_normal"]


def ensure_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed / Generator / None into a Generator."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def spawn_rngs(seed: int, count: int) -> list[np.random.Generator]:
    """``count`` statistically independent generators derived from one seed."""
    if count < 0:
        raise ValueError("count must be nonnegative")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(count)]


def truncated_normal(
    rng: np.random.Generator,
    mean: float,
    std: float,
    size: int,
    low: float = 0.0,
) -> np.ndarray:
    """Sample N(mean, std²) conditioned on being > ``low`` by resampling.

    The paper samples hourly demand from N(0.4, 0.2) "in the unit of GB and
    is always positive" — i.e. exactly this truncation.  Rejection sampling
    is exact and cheap for the parameter ranges involved (acceptance ≈ 97 %
    at the paper's parameters).
    """
    if std < 0:
        raise ValueError("std must be nonnegative")
    if std == 0:
        if mean <= low:
            raise ValueError("degenerate distribution entirely below truncation point")
        return np.full(size, mean)
    out = np.empty(size)
    filled = 0
    # guard: if the acceptance region is far in the tail, fail loudly
    # (normal survival function via erfc — no scipy needed)
    accept = 0.5 * math.erfc((low - mean) / (std * math.sqrt(2.0)))
    if accept < 1e-6:
        raise ValueError("truncation point leaves negligible probability mass")
    while filled < size:
        need = size - filled
        draw = rng.normal(mean, std, size=max(need + 8, int(need / accept) + 8))
        good = draw[draw > low]
        take = min(good.size, need)
        out[filled : filled + take] = good[:take]
        filled += take
    return out
