"""repro — reproduction of "Optimal Resource Rental Planning for Elastic
Applications in Cloud Market" (Zhao et al., IPDPS 2012).

The library has three layers:

* substrates — :mod:`repro.solver` (LP/MILP stack), :mod:`repro.stats` and
  :mod:`repro.timeseries` (the paper's spot-price analysis toolkit),
  :mod:`repro.market` (EC2 price catalog, synthetic spot traces, auction
  semantics), :mod:`repro.parallel` (process-pool sweeps);
* core — :mod:`repro.core`: the DRRP MILP, the SRRP multistage stochastic
  program on scenario trees, baselines, and the rolling-horizon simulator;
* experiments — :mod:`repro.experiments`: one module per figure of the
  paper's evaluation, each regenerating the reported series.

Quickstart::

    from repro.core import DRRPInstance, solve_drrp

    inst = DRRPInstance.example()      # 24h horizon, N(0.4, 0.2) GB/h demand
    plan = solve_drrp(inst)
    print(plan.total_cost, plan.rent_slots)
"""

__version__ = "1.0.0"

__all__ = ["solver", "stats", "timeseries", "market", "core", "parallel", "experiments"]
