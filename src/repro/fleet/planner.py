"""`plan_fleet`: heuristic-first multi-tenant planning with MILP escalation.

The pipeline:

1. **Independent planning** — every tenant is planned by the heuristic
   tier (:mod:`repro.fleet.heuristic`), fanned out over processes with
   :func:`repro.parallel.parallel_map` (the fan-out degrades to serial
   inside service workers via the existing ``serial_guard``).  A tenant
   escalates to the exact DRRP MILP when its SLA is escalation-eligible
   and the Wagner–Whitin gap certificate exceeds the SLA tolerance — and
   unconditionally when the heuristic cannot produce a feasible plan.
   Escalated tenants call :func:`repro.core.drrp.solve_drrp` with the
   same arguments a direct caller would use, so their plans are
   bit-for-bit identical to single-tenant solves.
2. **Pool repair** — independent plans may oversubscribe a shared pool
   (:mod:`repro.fleet.pool`).  Each repair round trims every overloaded
   slot down to capacity: renters are ranked by a regret estimate (the
   holding cost of carrying that slot's demand from the previous slot,
   minus the setup cost saved — exactly the exchange-argument delta of
   the ``fleet-pool`` verify family), the smallest-regret renters lose
   the slot, and the trimmed tenants are re-planned with the slot
   *knocked out* (zero bottleneck capacity, the
   ``apply_interruptions`` encoding).  Tenants whose remaining available
   slots could no longer precede their first net demand are *pinned* and
   never trimmed.  Each round knocks out at least one new (tenant, slot)
   pair, so repair terminates in at most ``tenants x horizon`` rounds.

Same-shape tenant models share one compiled sparsity pattern through the
``Model.compile`` shape cache; the per-process cache counters are
aggregated across workers and reported in :class:`FleetPlan` so
``repro bench-fleet`` can gate the hit rate.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field, replace
from fractions import Fraction

import numpy as np

from repro.core.drrp import DRRPInstance, RentalPlan, solve_drrp
from repro.fleet.heuristic import HeuristicInfeasible, solve_heuristic
from repro.fleet.pool import (
    CapacityPool,
    fleet_cost,
    pool_excess,
    pool_usage,
    verify_fleet_feasible,
)
from repro.fleet.tenants import SLAS, Tenant
from repro.obs.spans import span
from repro.parallel.pool import default_workers, parallel_map
from repro.solver.model import compile_cache_stats
from repro.solver.telemetry import Telemetry

__all__ = ["FleetConfig", "TenantOutcome", "FleetPlan", "plan_fleet"]


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of one fleet planning run."""

    backend: str = "auto"
    workers: int | None = None  # None -> repro.parallel.default_workers()
    max_search_rounds: int = 40
    max_repair_rounds: int | None = None  # None -> tenants * horizon
    escalate: bool = True  # False: heuristic-only (the service's degraded mode)

    def __post_init__(self) -> None:
        if self.max_search_rounds < 1:
            raise ValueError("max_search_rounds must be positive")
        if self.max_repair_rounds is not None and self.max_repair_rounds < 1:
            raise ValueError("max_repair_rounds must be positive when given")


@dataclass
class TenantOutcome:
    """The plan one tenant ended up with, and how it got it."""

    tenant_id: int
    plan: RentalPlan
    instance: DRRPInstance  # the (possibly knocked) instance the plan satisfies
    method: str  # "heuristic" | "milp"
    escalated: bool
    reason: str  # "" | "gap" | "heuristic-infeasible"
    gap: float | None
    lower_bound: float | None
    knocked: tuple[int, ...] = ()


@dataclass
class FleetPlan:
    """Joint plan for the whole fleet plus planning telemetry."""

    outcomes: list[TenantOutcome]
    pools: dict[str, CapacityPool]
    usage: dict[str, np.ndarray]
    total_cost: float
    total_cost_exact: Fraction
    eligible: int
    escalated: int
    repair_rounds: int
    knockouts: int
    methods: dict[str, int]
    compile_stats: dict[str, int]
    failures: list[str] = field(default_factory=list)

    @property
    def feasible(self) -> bool:
        return not self.failures

    @property
    def escalation_fraction(self) -> float:
        return self.escalated / len(self.outcomes) if self.outcomes else 0.0

    def summary(self, tenants: list[Tenant] | None = None) -> dict:
        """JSON-able digest (what the ``/fleet`` service endpoint returns)."""
        out = {
            "kind": "fleet",
            "tenants": len(self.outcomes),
            "status": "optimal" if self.feasible else "infeasible",
            "total_cost": self.total_cost,
            "total_cost_exact": str(self.total_cost_exact),
            "eligible": self.eligible,
            "escalated": self.escalated,
            "escalation_fraction": self.escalation_fraction,
            "methods": dict(self.methods),
            "repair_rounds": self.repair_rounds,
            "knockouts": self.knockouts,
            "feasible": self.feasible,
            "failures": list(self.failures),
            "pools": {
                name: {
                    "capacity_min": float(pool.capacity.min()),
                    "capacity_max": float(pool.capacity.max()),
                    "peak_usage": float(self.usage[name].max()) if name in self.usage else 0.0,
                }
                for name, pool in self.pools.items()
            },
        }
        if tenants is not None:
            by_id = {t.tenant_id: t for t in tenants}
            out["tenant_plans"] = [
                {
                    "tenant": o.tenant_id,
                    "name": by_id[o.tenant_id].name if o.tenant_id in by_id else "",
                    "pool": by_id[o.tenant_id].pool if o.tenant_id in by_id else "",
                    "sla": by_id[o.tenant_id].sla if o.tenant_id in by_id else "",
                    "method": o.method,
                    "escalated": o.escalated,
                    "cost": float(o.plan.objective),
                    "gap": o.gap,
                    "rent_slots": int(np.count_nonzero(o.plan.chi > 0.5)),
                    "knocked": list(o.knocked),
                }
                for o in self.outcomes
            ]
        return out


def _knock(instance: DRRPInstance, slots: tuple[int, ...]) -> DRRPInstance:
    """Zero out the bottleneck capacity of ``slots`` (repair encoding).

    Mirrors :func:`repro.market.interruptions.apply_interruptions`: rate 1,
    capacity 0 on knocked slots and a just-large-enough bound elsewhere so
    the bottleneck never binds where the slot is open.
    """
    if not slots:
        return instance
    big = float(np.asarray(instance.demand, dtype=float).sum()) + float(
        instance.initial_storage
    ) + 1.0
    if instance.bottleneck_rate is not None:
        rate = float(instance.bottleneck_rate)
        cap = np.asarray(instance.bottleneck_capacity, dtype=float).copy()
    else:
        rate = 1.0
        cap = np.full(instance.horizon, big)
    cap[list(slots)] = 0.0
    return replace(instance, bottleneck_rate=rate, bottleneck_capacity=cap)


def _plan_tenant(item: tuple) -> dict:
    """Worker body: heuristic first, MILP on escalation (module-level so
    ``parallel_map`` can pickle it)."""
    tenant_id, instance, knocked, gap_tol, escalate, backend, max_rounds = item
    before = compile_cache_stats()
    knocked_instance = _knock(instance, knocked)
    method, reason, gap, lower = "heuristic", "", None, None
    plan = None
    try:
        result = solve_heuristic(knocked_instance, max_rounds=max_rounds)
        gap, lower, plan = result.gap, result.lower_bound, result.plan
        if escalate and math.isfinite(gap_tol) and result.gap > gap_tol:
            method, reason, plan = "milp", "gap", None
    except HeuristicInfeasible:
        # Correctness beats tiering: a tenant the heuristic cannot serve
        # within its available slots gets the MILP regardless of SLA.
        method, reason = "milp", "heuristic-infeasible"
    if plan is None:
        plan = solve_drrp(knocked_instance, backend=backend)
    after = compile_cache_stats()
    return {
        "outcome": TenantOutcome(
            tenant_id=tenant_id,
            plan=plan,
            instance=knocked_instance,
            method=method,
            escalated=method == "milp",
            reason=reason,
            gap=gap,
            lower_bound=lower,
            knocked=knocked,
        ),
        "compile": {k: after[k] - before[k] for k in after},
    }


def _first_net_demand(tenant: Tenant) -> int:
    """Index of the first slot with demand the initial storage cannot cover
    (-1 when storage covers everything)."""
    demand = np.asarray(tenant.instance.demand, dtype=float)
    covered = np.cumsum(demand) - float(tenant.instance.initial_storage)
    positive = np.nonzero(covered > 1e-12)[0]
    return int(positive[0]) if positive.size else -1


def _base_available(tenant: Tenant) -> np.ndarray:
    inst = tenant.instance
    if inst.bottleneck_rate is None:
        return np.ones(inst.horizon, dtype=bool)
    return np.asarray(inst.bottleneck_capacity, dtype=float) > 0.0


def _pinned(tenant: Tenant, first_demand: int, available: np.ndarray,
            knocked: set[int], slot: int) -> bool:
    """Would knocking ``slot`` leave no setup slot before the tenant's
    first uncovered demand?"""
    if first_demand < 0:
        return False
    avail = available.copy()
    for s in knocked:
        avail[s] = False
    avail[slot] = False
    return not avail[: first_demand + 1].any()


def _early_slack(tenant: Tenant, first_demand: int, available: np.ndarray,
                 knocked: set[int], slot: int) -> float:
    """How many setup slots before the first uncovered demand would survive
    knocking ``slot``.  Low slack means the next knock near slot 0 pins the
    tenant there — trimming it now risks painting repair into a corner."""
    if first_demand < 0:
        return math.inf
    avail = available.copy()
    for s in knocked:
        avail[s] = False
    avail[slot] = False
    return float(avail[: first_demand + 1].sum())


def _regret(tenant: Tenant, slot: int) -> float:
    """Estimated cost of losing ``slot``: carry its demand from the
    previous slot instead of paying the setup there."""
    if slot == 0:
        return math.inf
    inst = tenant.instance
    holding = float(inst.costs.holding[slot - 1])
    demand = float(inst.demand[slot])
    setup = float(inst.costs.compute[slot])
    return holding * demand - setup


def plan_fleet(
    tenants: list[Tenant],
    pools: dict[str, CapacityPool],
    config: FleetConfig | None = None,
    listener=None,
) -> FleetPlan:
    """Plan every tenant, then repair shared-pool overloads.

    Raises ``ValueError`` when a pool is structurally infeasible (pinned
    renters alone exceed a slot's capacity) and ``RuntimeError`` when
    repair exceeds its round budget.
    """
    if not tenants:
        raise ValueError("plan_fleet needs at least one tenant")
    cfg = config or FleetConfig()
    hub = Telemetry.from_listener(listener)
    workers = cfg.workers if cfg.workers is not None else default_workers()
    horizon = tenants[0].horizon
    for t in tenants:
        if t.horizon != horizon:
            raise ValueError("all tenants must share one planning horizon")

    by_id = {t.tenant_id: t for t in tenants}
    knocked: dict[int, set[int]] = defaultdict(set)
    compile_total: dict[str, int] = defaultdict(int)

    def run_batch(ids: list[int], phase: str) -> None:
        items = [
            (
                tid,
                by_id[tid].instance,
                tuple(sorted(knocked[tid])),
                SLAS[by_id[tid].sla].gap_tolerance,
                cfg.escalate,
                cfg.backend,
                cfg.max_search_rounds,
            )
            for tid in ids
        ]
        with span(hub, phase, tenants=len(items)) as attrs:
            results = parallel_map(
                _plan_tenant, items, n_workers=workers, telemetry=hub
            )
            escalations = 0
            for result in results:
                outcome = result["outcome"]
                outcomes[outcome.tenant_id] = outcome
                escalations += int(outcome.escalated)
                for key, value in result["compile"].items():
                    compile_total[key] += value
            attrs["escalated"] = escalations

    outcomes: dict[int, TenantOutcome] = {}
    with span(hub, "fleet_plan", tenants=len(tenants), horizon=horizon) as root:
        run_batch([t.tenant_id for t in tenants], "fleet_heuristic")

        first_demand = {t.tenant_id: _first_net_demand(t) for t in tenants}
        base_avail = {t.tenant_id: _base_available(t) for t in tenants}
        max_rounds = cfg.max_repair_rounds or max(1, len(tenants) * horizon)
        repair_rounds = 0
        while True:
            chi_by_id = {tid: o.plan.chi for tid, o in outcomes.items()}
            excess = pool_excess(pools, pool_usage(tenants, chi_by_id, pools))
            overloaded = [
                (name, int(slot))
                for name in sorted(excess)
                for slot in np.nonzero(excess[name] > 1e-9)[0]
            ]
            if not overloaded:
                break
            repair_rounds += 1
            if repair_rounds > max_rounds:
                raise RuntimeError(
                    f"pool repair did not converge within {max_rounds} rounds"
                )
            affected: set[int] = set()
            with span(hub, f"fleet_repair[{repair_rounds}]") as attrs:
                for name, slot in overloaded:
                    pool = pools[name]
                    renters = sorted(
                        tid
                        for tid, o in outcomes.items()
                        if by_id[tid].pool == name and o.plan.chi[slot] > 0.5
                    )
                    allowed = int(math.floor(float(pool.capacity[slot]) + 1e-9))
                    trim = len(renters) - allowed
                    if trim <= 0:
                        continue
                    candidates = [
                        tid
                        for tid in renters
                        if not _pinned(
                            by_id[tid], first_demand[tid], base_avail[tid],
                            knocked[tid], slot,
                        )
                    ]
                    if len(candidates) < trim:
                        raise ValueError(
                            f"pool {name!r} infeasible at slot {slot}: "
                            f"{len(renters) - len(candidates)} pinned renters "
                            f"exceed capacity {allowed}"
                        )
                    # Trim cheap-to-move renters first, but among them
                    # prefer the ones that keep early-slot flexibility: a
                    # tenant whose last early alternative this knock would
                    # remove migrates to slot 0 on re-solve, where nothing
                    # can be trimmed and the slot-0 floor never counted it
                    # (tenants with first_demand == 0 are already in that
                    # floor, so only later first demands are at risk).
                    candidates.sort(
                        key=lambda tid: (
                            first_demand[tid] > 0
                            and _early_slack(
                                by_id[tid], first_demand[tid], base_avail[tid],
                                knocked[tid], slot,
                            ) <= 1.0,
                            _regret(by_id[tid], slot),
                            tid,
                        )
                    )
                    for tid in candidates[:trim]:
                        knocked[tid].add(slot)
                        affected.add(tid)
                attrs["knocked"] = len(affected)
                run_batch(sorted(affected), f"fleet_resolve[{repair_rounds}]")

        ordered = [outcomes[t.tenant_id] for t in tenants]
        usage = pool_usage(
            tenants, {o.tenant_id: o.plan.chi for o in ordered}, pools
        )
        failures = verify_fleet_feasible(tenants, ordered, pools)
        total_exact = fleet_cost(ordered)
        methods: dict[str, int] = defaultdict(int)
        for o in ordered:
            methods[o.method] += 1
        escalated = sum(1 for o in ordered if o.escalated)
        root["escalated"] = escalated
        root["repair_rounds"] = repair_rounds
        if hub:
            for o in ordered:
                hub.emit(
                    "tenant_planned",
                    tenant=o.tenant_id,
                    method=o.method,
                    escalated=o.escalated,
                    cost=float(o.plan.objective),
                    gap=o.gap,
                )

    return FleetPlan(
        outcomes=ordered,
        pools=pools,
        usage=usage,
        total_cost=float(total_exact),
        total_cost_exact=total_exact,
        eligible=sum(1 for t in tenants if t.escalation_eligible),
        escalated=escalated,
        repair_rounds=repair_rounds,
        knockouts=sum(len(s) for s in knocked.values()),
        methods=dict(methods),
        compile_stats=dict(compile_total),
        failures=failures,
    )
