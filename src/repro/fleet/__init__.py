"""Fleet-scale multi-tenant rental planning.

Scales the paper's single-application DRRP to a fleet: a seeded tenant
population (:mod:`repro.fleet.tenants`) shares finite spot/on-demand/
reserved capacity pools (:mod:`repro.fleet.pool`); every tenant is
planned by a cheap greedy + local-search tier with exact-Fraction
accounting (:mod:`repro.fleet.heuristic`) and escalated to the exact
MILP only when its Wagner–Whitin gap certificate exceeds the SLA
tolerance; :func:`repro.fleet.planner.plan_fleet` orchestrates the
fan-out, compiled-model sharing and pool-feasibility repair.
"""

from .heuristic import HeuristicInfeasible, HeuristicResult, solve_heuristic
from .planner import FleetConfig, FleetPlan, TenantOutcome, plan_fleet
from .pool import (
    CapacityPool,
    fleet_cost,
    pool_excess,
    pool_usage,
    uniform_pools,
    verify_fleet_feasible,
)
from .tenants import POOLS, PROFILES, SLA, SLAS, Tenant, generate_tenants

__all__ = [
    "HeuristicInfeasible",
    "HeuristicResult",
    "solve_heuristic",
    "FleetConfig",
    "FleetPlan",
    "TenantOutcome",
    "plan_fleet",
    "CapacityPool",
    "fleet_cost",
    "pool_excess",
    "pool_usage",
    "uniform_pools",
    "verify_fleet_feasible",
    "POOLS",
    "PROFILES",
    "SLA",
    "SLAS",
    "Tenant",
    "generate_tenants",
]
