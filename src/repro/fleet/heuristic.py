"""Heuristic tier: greedy lot-sizing + local search with a WW escalation rule.

The fleet cannot afford a MILP per tenant.  This module plans one tenant
in polynomial time:

1. **Greedy construction** walks the horizon once.  At each slot with
   positive net demand it either serves from the cheapest already-open
   setup or opens a new one, whichever is cheaper for that slot's demand
   — the classic lot-sizing greedy (cf. Silver–Meal), extended with an
   availability mask so repair re-solves (slots knocked out by the pool
   trimmer) stay heuristic.
2. **Local search** improves the setup *set* by first-improvement
   add/remove moves.  Given a setup set, the cheapest assignment of each
   demand unit to an open setup is computed exactly by a left-to-right
   running minimum of ``transfer_in*phi - cumulative_holding`` (setups
   are uncapacitated), so every candidate set is evaluated at its true
   cost and unused setups prune themselves.
3. **Exact accounting**: the returned plan's cost decomposition is
   computed in :class:`fractions.Fraction` arithmetic (floats convert
   exactly), so fleet totals are order-independent and the differential
   guarantee *heuristic cost >= MILP optimum* holds exactly, not just to
   a tolerance.  Search-time comparisons use floats for speed.

**Escalation rule.**  :func:`solve_wagner_whitin` is the exact optimum of
the uncapacitated single-tenant problem, computable in O(T^2) — a valid
lower bound even when slots were knocked out (removing slots only raises
the optimum).  ``gap = (heuristic - WW) / WW`` therefore *overestimates*
the heuristic's true optimality gap, and a tenant is routed to the DRRP
MILP only when this certificate exceeds its SLA tolerance: exactly the
"route only the worth-it tenants" rule the fleet planner needs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from fractions import Fraction

import numpy as np

from repro.core.drrp import DRRPInstance, RentalPlan
from repro.core.lotsizing import solve_wagner_whitin
from repro.solver import SolverStatus

__all__ = ["HeuristicInfeasible", "HeuristicResult", "solve_heuristic"]

_TINY = 1e-12


class HeuristicInfeasible(RuntimeError):
    """No feasible plan within the availability mask (caller should MILP)."""


@dataclass(frozen=True)
class HeuristicResult:
    """A heuristic plan plus its escalation certificate."""

    plan: RentalPlan
    objective: float
    exact_objective: Fraction
    lower_bound: float
    gap: float
    rounds: int


def _availability(instance: DRRPInstance) -> np.ndarray:
    """Slots where a setup may be opened.

    Zero bottleneck capacity means the slot is knocked out (the pool
    repair encoding, mirroring ``apply_interruptions``); other capacities
    are left to the final validation — a partial cap the plan violates
    raises :class:`HeuristicInfeasible` and the planner escalates.
    """
    if instance.bottleneck_rate is None:
        return np.ones(instance.horizon, dtype=bool)
    return np.asarray(instance.bottleneck_capacity, dtype=float) > 0.0


def _net_demand_exact(instance: DRRPInstance) -> list[Fraction]:
    """Demand left after the initial storage serves the earliest slots.

    Computed once, exactly; the float view handed to the search is
    ``float(x)`` of these Fractions, so "has net demand" means the same
    thing in the search and in the exact accounting (a nonzero dyadic
    rational never rounds to 0.0).
    """
    net = [Fraction(float(d)) for d in instance.demand]
    remaining = Fraction(float(instance.initial_storage))
    for t in range(len(net)):
        if remaining <= 0:
            break
        used = min(remaining, net[t])
        net[t] -= used
        remaining -= used
    return net


def _evaluate(
    setups: list[int],
    net: np.ndarray,
    unit_src: np.ndarray,
    cum_h: np.ndarray,
    setup_cost: np.ndarray,
) -> tuple[float, dict[int, int]] | None:
    """Cost of the optimal assignment given a setup set (floats).

    ``unit_src[a] = transfer_in[a]*phi - cum_h[a]`` so the unit cost of
    producing at ``a`` for slot ``u`` is ``unit_src[a] + cum_h[u]``; the
    cheapest open source is a running prefix minimum.  Returns ``(cost,
    sources)`` with ``sources[u]`` the chosen setup per demand slot, or
    ``None`` when some demand has no open setup at or before it.  Unused
    setups contribute no cost (they are pruned from the final plan).
    """
    best_val = np.inf
    best_slot = -1
    j = 0
    cost = 0.0
    sources: dict[int, int] = {}
    used: set[int] = set()
    for u in range(net.shape[0]):
        while j < len(setups) and setups[j] <= u:
            a = setups[j]
            if unit_src[a] < best_val:
                best_val, best_slot = unit_src[a], a
            j += 1
        if net[u] > 0.0:
            if best_slot < 0:
                return None
            cost += (best_val + cum_h[u]) * net[u]
            sources[u] = best_slot
            used.add(best_slot)
    cost += float(setup_cost[sorted(used)].sum()) if used else 0.0
    return cost, sources


def _greedy(
    net: np.ndarray,
    avail: np.ndarray,
    unit_src: np.ndarray,
    cum_h: np.ndarray,
    setup_cost: np.ndarray,
) -> list[int]:
    """One left-to-right pass: extend the cheapest open lot or open a new one."""
    setups: list[int] = []
    opened = np.zeros(net.shape[0], dtype=bool)
    best_val = np.inf
    best_slot = -1
    for u in range(net.shape[0]):
        if net[u] <= 0.0:
            continue
        extend = (best_val + cum_h[u]) * net[u] if best_slot >= 0 else np.inf
        cand_slot, cand_cost = -1, np.inf
        for a in range(u + 1):
            if not avail[a] or opened[a]:
                continue
            c = setup_cost[a] + (unit_src[a] + cum_h[u]) * net[u]
            if c < cand_cost:
                cand_slot, cand_cost = a, c
        if cand_slot < 0 and best_slot < 0:
            raise HeuristicInfeasible(
                f"demand at slot {u} has no available setup slot at or before it"
            )
        if cand_cost < extend:
            setups.append(cand_slot)
            opened[cand_slot] = True
            if unit_src[cand_slot] < best_val:
                best_val, best_slot = unit_src[cand_slot], cand_slot
    return sorted(setups)


def _local_search(
    setups: list[int],
    net: np.ndarray,
    avail: np.ndarray,
    unit_src: np.ndarray,
    cum_h: np.ndarray,
    setup_cost: np.ndarray,
    max_rounds: int,
) -> tuple[list[int], int]:
    """First-improvement add/remove moves on the setup set until a local
    optimum (or the round budget).  Shifts emerge as add-then-remove
    across consecutive rounds."""
    evaluated = _evaluate(setups, net, unit_src, cum_h, setup_cost)
    if evaluated is None:
        raise HeuristicInfeasible("greedy produced an infeasible setup set")
    cost = evaluated[0]
    rounds = 0
    improved = True
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for a in list(setups):
            trial = [s for s in setups if s != a]
            res = _evaluate(trial, net, unit_src, cum_h, setup_cost)
            if res is not None and res[0] < cost - _TINY:
                setups, cost, improved = trial, res[0], True
        open_set = set(setups)
        for b in range(net.shape[0]):
            if not avail[b] or b in open_set:
                continue
            trial = sorted(setups + [b])
            res = _evaluate(trial, net, unit_src, cum_h, setup_cost)
            if res is not None and res[0] < cost - _TINY:
                setups, cost, improved = trial, res[0], True
                open_set = set(setups)
        # Shift moves: slide one setup a few slots.  Add/remove alone get
        # stuck when a setup is merely misplaced (dropping it is too
        # expensive, keeping it blocks the better neighbor).
        for a in list(setups):
            for b in range(max(0, a - 2), min(net.shape[0], a + 3)):
                if b == a or not avail[b] or b in open_set:
                    continue
                trial = sorted([s for s in setups if s != a] + [b])
                res = _evaluate(trial, net, unit_src, cum_h, setup_cost)
                if res is not None and res[0] < cost - _TINY:
                    setups, cost, improved = trial, res[0], True
                    open_set = set(setups)
                    break
    return setups, rounds


def _exact_plan(
    instance: DRRPInstance,
    net_exact: list[Fraction],
    sources: dict[int, int],
    rounds: int,
) -> tuple[RentalPlan, Fraction]:
    """Rebuild the chosen plan in exact Fraction arithmetic."""
    T = instance.horizon
    c = instance.costs
    phi = Fraction(float(instance.phi))
    demand = [Fraction(float(d)) for d in instance.demand]
    holding = [Fraction(float(h)) for h in c.holding]
    setup = [Fraction(float(s)) for s in c.compute]
    tin = [Fraction(float(v)) for v in c.transfer_in]
    tout = [Fraction(float(v)) for v in c.transfer_out]

    alpha = [Fraction(0)] * T
    for u, net_u in enumerate(net_exact):
        if net_u > 0:
            alpha[sources[u]] += net_u

    beta = [Fraction(0)] * T
    prev = Fraction(float(instance.initial_storage))
    for t in range(T):
        beta[t] = prev + alpha[t] - demand[t]
        prev = beta[t]

    chi = [1.0 if alpha[t] > 0 else 0.0 for t in range(T)]
    compute_cost = sum((setup[t] for t in range(T) if chi[t] > 0.5), Fraction(0))
    inventory_cost = sum((holding[t] * beta[t] for t in range(T)), Fraction(0))
    tin_cost = sum((tin[t] * phi * alpha[t] for t in range(T)), Fraction(0))
    tout_cost = sum((tout[t] * demand[t] for t in range(T)), Fraction(0))
    objective = compute_cost + inventory_cost + tin_cost + tout_cost

    plan = RentalPlan(
        alpha=np.array([float(a) for a in alpha]),
        beta=np.array([float(b) for b in beta]),
        chi=np.array(chi),
        compute_cost=float(compute_cost),
        inventory_cost=float(inventory_cost),
        transfer_in_cost=float(tin_cost),
        transfer_out_cost=float(tout_cost),
        objective=float(objective),
        status=SolverStatus.FEASIBLE,
        vm_name=instance.vm_name,
        extra={
            "scheme": "fleet-heuristic",
            "exact_objective": str(objective),
            "search_rounds": rounds,
        },
    )
    return plan, objective


def solve_heuristic(
    instance: DRRPInstance, max_rounds: int = 40, tol: float = 1e-6
) -> HeuristicResult:
    """Plan one tenant heuristically and certify the result against the
    Wagner–Whitin lower bound of its uncapacitated relaxation."""
    avail = _availability(instance)
    net_exact = _net_demand_exact(instance)
    net = np.array([float(x) for x in net_exact])
    if not avail.all():
        first = int(np.argmax(net > 0.0)) if np.any(net > 0.0) else -1
        if first >= 0 and not avail[: first + 1].any():
            raise HeuristicInfeasible(
                f"first net demand at slot {first} precedes every available slot"
            )

    c = instance.costs
    unit_src = np.asarray(c.transfer_in, dtype=float) * float(instance.phi)
    cum_h = np.concatenate([[0.0], np.cumsum(np.asarray(c.holding, dtype=float))])[:-1]
    # unit cost of (produce at a, consume at u) = unit_src[a] - cum_h[a] + cum_h[u]
    unit_src = unit_src - cum_h
    setup_cost = np.asarray(c.compute, dtype=float)

    setups = _greedy(net, avail, unit_src, cum_h, setup_cost)
    setups, rounds = _local_search(
        setups, net, avail, unit_src, cum_h, setup_cost, max_rounds
    )
    evaluated = _evaluate(setups, net, unit_src, cum_h, setup_cost)
    if evaluated is None:
        raise HeuristicInfeasible("local search lost feasibility")
    plan, exact_objective = _exact_plan(instance, net_exact, evaluated[1], rounds)
    try:
        plan.validate(instance, tol=tol)
    except AssertionError as exc:
        raise HeuristicInfeasible(str(exc)) from exc
    if instance.bottleneck_rate is not None:
        lhs = float(instance.bottleneck_rate) * plan.alpha
        if np.any(lhs > np.asarray(instance.bottleneck_capacity, dtype=float) + tol):
            raise HeuristicInfeasible("plan violates a finite bottleneck capacity")

    relaxed = (
        instance
        if instance.bottleneck_rate is None
        else replace(instance, bottleneck_rate=None, bottleneck_capacity=None)
    )
    ww = solve_wagner_whitin(relaxed)
    lower = float(ww.objective)
    gap = (float(exact_objective) - lower) / max(abs(lower), 1e-9)
    return HeuristicResult(
        plan=plan,
        objective=float(exact_objective),
        exact_objective=exact_objective,
        lower_bound=lower,
        gap=max(gap, 0.0),
        rounds=rounds,
    )
