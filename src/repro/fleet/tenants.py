"""Seeded tenant populations for fleet-scale rental planning.

A *tenant* is one elastic application with its own demand profile, SLA
tier, size and pool assignment, wrapped around the paper's single-tenant
:class:`~repro.core.drrp.DRRPInstance`.  The generator is deterministic
for a fixed seed — per-tenant randomness comes from
:func:`repro.stats.rng.spawn_rngs`, so tenant ``i`` of a population is
identical no matter how many tenants are generated around it.

Heterogeneity mirrors the knobs the paper varies one at a time:

* **demand profile** — one of the four :mod:`repro.core.demand` models
  (truncated-normal, diurnal, bursty, constant), scaled by a per-tenant
  size factor;
* **pool** — which shared capacity pool the tenant rents from
  (``spot`` tenants price compute off a synthetic market trace from
  :mod:`repro.market.traces`, ``reserved`` tenants get a discounted
  on-demand rate, ``on-demand`` tenants pay list price);
* **SLA** — how much optimality the tenant paid for, expressed as the
  optimality-gap tolerance of the heuristic tier before the planner
  escalates the tenant to the exact DRRP MILP (see
  :mod:`repro.fleet.heuristic`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.costs import on_demand_schedule, spot_schedule
from repro.core.demand import BurstyDemand, ConstantDemand, DiurnalDemand, NormalDemand
from repro.core.drrp import DRRPInstance
from repro.market.catalog import VMClass, ec2_catalog
from repro.market.resample import hourly_series
from repro.market.traces import TraceParams, generate_spot_trace
from repro.stats.rng import spawn_rngs

__all__ = ["SLA", "SLAS", "Tenant", "POOLS", "PROFILES", "generate_tenants"]

#: The three shared capacity pools of the fleet (see :mod:`repro.fleet.pool`).
POOLS = ("spot", "on-demand", "reserved")

#: Demand-profile labels, in the order the generator draws them.
PROFILES = ("normal", "diurnal", "bursty", "constant")

#: Reserved instances trade an upfront commitment for a lower hourly rate;
#: the amortized discount is in the band AWS published for 1-year terms.
RESERVED_DISCOUNT = 0.55


@dataclass(frozen=True)
class SLA:
    """A service tier: how much exactness the tenant is entitled to.

    ``gap_tolerance`` is the heuristic optimality-gap threshold (relative
    to the Wagner–Whitin lower bound) above which the planner escalates
    the tenant to the exact MILP; ``math.inf`` means the tenant never
    escalates (best-effort heuristic only).
    """

    name: str
    gap_tolerance: float

    @property
    def escalation_eligible(self) -> bool:
        return math.isfinite(self.gap_tolerance)


#: The fleet's service tiers.  Batch tenants are never worth a MILP solve;
#: premium tenants escalate on any measurable gap.
SLAS: dict[str, SLA] = {
    "batch": SLA("batch", math.inf),
    "standard": SLA("standard", 0.02),
    "premium": SLA("premium", 0.002),
}


@dataclass(frozen=True)
class Tenant:
    """One application in the fleet (picklable: workers re-plan tenants)."""

    tenant_id: int
    name: str
    vm_name: str
    profile: str
    sla: str
    pool: str
    size: float
    instance: DRRPInstance

    @property
    def horizon(self) -> int:
        return self.instance.horizon

    @property
    def escalation_eligible(self) -> bool:
        return SLAS[self.sla].escalation_eligible

    @property
    def gap_tolerance(self) -> float:
        return SLAS[self.sla].gap_tolerance


def _demand_model(profile: str, rng: np.random.Generator):
    if profile == "normal":
        return NormalDemand(mean=rng.uniform(0.25, 0.6), std=rng.uniform(0.1, 0.3))
    if profile == "diurnal":
        return DiurnalDemand(
            mean=rng.uniform(0.3, 0.6),
            amplitude=rng.uniform(0.1, 0.25),
            noise_std=rng.uniform(0.02, 0.08),
        )
    if profile == "bursty":
        return BurstyDemand(
            base=rng.uniform(0.1, 0.3),
            burst=rng.uniform(0.8, 2.0),
            burst_probability=rng.uniform(0.05, 0.2),
        )
    return ConstantDemand(rate=rng.uniform(0.2, 0.6))


def _tenant_costs(pool: str, vm: VMClass, horizon: int, rng: np.random.Generator):
    """Cost schedule priced off the tenant's pool."""
    if pool == "spot":
        params = TraceParams(duration_days=horizon / 24.0 + 2.0)
        trace = generate_spot_trace(vm, rng, params)
        prices = hourly_series(trace, 0.0, float(horizon))
        return spot_schedule(vm, prices)
    costs = on_demand_schedule(vm, horizon)
    if pool == "reserved":
        costs = costs.with_compute(costs.compute * RESERVED_DISCOUNT)
    return costs


def generate_tenants(
    count: int,
    seed: int = 0,
    horizon: int = 24,
    catalog: dict[str, VMClass] | None = None,
) -> list[Tenant]:
    """Generate a deterministic, heterogeneous tenant population.

    All tenants share ``horizon`` — fleets replan on a common rolling
    window — which is what lets their DRRP models share one compiled
    shape in :meth:`repro.solver.Model.compile`.
    """
    if count < 1:
        raise ValueError(f"a fleet needs at least one tenant, got {count}")
    if horizon < 1:
        raise ValueError(f"horizon must be positive, got {horizon}")
    catalog = catalog or ec2_catalog()
    vm_names = sorted(catalog)
    sla_names = tuple(SLAS)
    tenants: list[Tenant] = []
    for tenant_id, rng in enumerate(spawn_rngs(seed, count)):
        profile = PROFILES[int(rng.integers(len(PROFILES)))]
        pool = str(rng.choice(POOLS, p=(0.5, 0.3, 0.2)))
        sla = str(rng.choice(sla_names, p=(0.4, 0.4, 0.2)))
        vm = catalog[vm_names[int(rng.integers(len(vm_names)))]]
        # Log-uniform size factor: most tenants are small, a few are large.
        size = float(np.exp(rng.uniform(np.log(0.5), np.log(6.0))))
        demand = _demand_model(profile, rng).sample(horizon, rng) * size
        initial = float(rng.uniform(0.0, 0.3) * max(float(demand.mean()), 0.0))
        instance = DRRPInstance(
            demand=demand,
            costs=_tenant_costs(pool, vm, horizon, rng),
            initial_storage=initial,
            vm_name=vm.name,
        )
        tenants.append(
            Tenant(
                tenant_id=tenant_id,
                name=f"tenant-{tenant_id:05d}",
                vm_name=vm.name,
                profile=profile,
                sla=sla,
                pool=pool,
                size=size,
                instance=instance,
            )
        )
    return tenants
