"""Shared capacity pools: the cross-tenant coupling of fleet planning.

The paper plans one application against an infinitely elastic market.  A
fleet shares finite pools — a spot allotment, an on-demand quota, a block
of reserved instances — so per-slot *concurrent rentals* are coupled
across tenants:

    sum over tenants i in pool p of chi_i(t)  <=  capacity_p(t)

``chi`` is the paper's binary rent indicator, so pool usage counts
renting tenants per slot.  :func:`repro.fleet.planner.plan_fleet` plans
tenants independently first, then repairs pool overloads by trimming
renters off overloaded slots and re-solving them (see ``planner``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.fleet.tenants import Tenant

__all__ = [
    "CapacityPool",
    "uniform_pools",
    "pool_usage",
    "pool_excess",
    "verify_fleet_feasible",
    "fleet_cost",
]


@dataclass(frozen=True)
class CapacityPool:
    """Per-slot cap on concurrent rentals drawn from one pool."""

    name: str
    capacity: np.ndarray

    def __post_init__(self) -> None:
        cap = np.asarray(self.capacity, dtype=float)
        if cap.ndim != 1 or cap.shape[0] < 1:
            raise ValueError(f"pool {self.name!r} needs a 1-D per-slot capacity")
        if np.any(cap < 0):
            raise ValueError(f"pool {self.name!r} has negative capacity")
        object.__setattr__(self, "capacity", cap)

    @property
    def horizon(self) -> int:
        return self.capacity.shape[0]


def uniform_pools(
    tenants: list[Tenant], utilization: float = 0.6, floor: int = 1
) -> dict[str, CapacityPool]:
    """Size each pool as a fraction of its member count, per slot.

    ``utilization`` scales the worst case (every member renting every
    slot); below ~0.7 the diurnal peaks of a mixed population reliably
    overload a few slots, which is what exercises the repair path.
    """
    if not tenants:
        raise ValueError("cannot size pools for an empty fleet")
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    horizon = tenants[0].horizon
    pools: dict[str, CapacityPool] = {}
    for pool_name in sorted({t.pool for t in tenants}):
        members = [t for t in tenants if t.pool == pool_name]
        cap = max(floor, int(np.ceil(utilization * len(members))))
        capacity = np.full(horizon, float(cap))
        # Hard floor at slot 0: a tenant whose initial storage cannot cover
        # its slot-0 demand has no earlier slot to produce in, so it *must*
        # rent slot 0 — no repair can trim it.
        forced = sum(
            1
            for t in members
            if float(t.instance.demand[0]) > float(t.instance.initial_storage) + 1e-12
        )
        capacity[0] = max(capacity[0], float(forced))
        pools[pool_name] = CapacityPool(name=pool_name, capacity=capacity)
    return pools


def pool_usage(
    tenants: list[Tenant], plans: dict[int, "np.ndarray"], pools: dict[str, CapacityPool]
) -> dict[str, np.ndarray]:
    """Concurrent renters per pool per slot.  ``plans`` maps tenant id to
    the plan's ``chi`` array (anything >0.5 counts as renting)."""
    usage = {
        name: np.zeros(pool.horizon, dtype=float) for name, pool in pools.items()
    }
    for tenant in tenants:
        chi = plans.get(tenant.tenant_id)
        if chi is None or tenant.pool not in usage:
            continue
        usage[tenant.pool] += (np.asarray(chi) > 0.5).astype(float)
    return usage


def pool_excess(
    pools: dict[str, CapacityPool], usage: dict[str, np.ndarray]
) -> dict[str, np.ndarray]:
    """Per-slot overload (usage above capacity), clipped at zero."""
    return {
        name: np.maximum(usage.get(name, 0.0) - pool.capacity, 0.0)
        for name, pool in pools.items()
    }


def verify_fleet_feasible(
    tenants: list[Tenant],
    outcomes: list,
    pools: dict[str, CapacityPool],
    tol: float = 1e-6,
) -> list[str]:
    """Check every per-tenant constraint and every pool cap; return
    human-readable failure strings (empty = feasible).

    ``outcomes`` are :class:`repro.fleet.planner.TenantOutcome` objects
    (anything with ``tenant_id``, ``plan`` and ``instance`` works): each
    plan is validated against the instance it was solved for — the
    *knocked* instance when repair trimmed the tenant.
    """
    failures: list[str] = []
    by_id = {t.tenant_id: t for t in tenants}
    chi_by_id: dict[int, np.ndarray] = {}
    for outcome in outcomes:
        tenant = by_id.get(outcome.tenant_id)
        if tenant is None:
            failures.append(f"outcome for unknown tenant {outcome.tenant_id}")
            continue
        try:
            outcome.plan.validate(outcome.instance, tol=tol)
        except AssertionError as exc:
            failures.append(f"tenant {tenant.name}: {exc}")
        chi_by_id[tenant.tenant_id] = outcome.plan.chi
    usage = pool_usage(tenants, chi_by_id, pools)
    for name, excess in pool_excess(pools, usage).items():
        bad = np.nonzero(excess > tol)[0]
        if bad.size:
            failures.append(
                f"pool {name!r} over capacity at slots {bad.tolist()} "
                f"(max excess {float(excess.max()):g})"
            )
    return failures


def fleet_cost(outcomes: list) -> Fraction:
    """Exact total fleet cost — an order-independent sum of exact
    per-tenant objectives (see :mod:`repro.fleet.heuristic` accounting)."""
    total = Fraction(0)
    for outcome in outcomes:
        exact = outcome.plan.extra.get("exact_objective")
        total += Fraction(exact) if exact is not None else Fraction(float(outcome.plan.objective))
    return total
