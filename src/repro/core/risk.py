"""Risk-averse SRRP: mean-CVaR optimization over the scenario tree.

The paper's SRRP minimizes *expected* cost (eq. 13); an ASP with a budget
to defend may also care about the tail.  This module adds the standard
Rockafellar–Uryasev linearization of Conditional Value-at-Risk:

    min  (1-λ)·E[cost] + λ·CVaR_α[cost]
    CVaR_α = η + 1/(1-α) Σ_s p_s z_s,   z_s ≥ cost_s - η,  z ≥ 0

where ``cost_s`` is the (linear) cost along scenario s's root-leaf path.
λ = 0 recovers the paper's SRRP exactly (property-tested); λ = 1 optimizes
pure CVaR.  Because scenario costs are linear in the tree-indexed recourse
variables, the extension stays a MILP of the same class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.solver import Model, SolverStatus, lin_sum, solve
from .srrp import SRRPInstance

__all__ = ["RiskAverseSRRPPlan", "solve_srrp_cvar"]


@dataclass
class RiskAverseSRRPPlan:
    """Solution of the mean-CVaR model.

    ``scenario_costs`` are the realized path costs under the optimal policy
    (probability-weighted mean equals ``expected_cost``); ``cvar`` is the
    optimized tail statistic and ``var`` the optimal η (the α-quantile
    threshold).
    """

    alpha: np.ndarray
    beta: np.ndarray
    chi: np.ndarray
    expected_cost: float
    cvar: float
    var: float
    objective: float
    risk_weight: float
    confidence: float
    scenario_costs: np.ndarray
    scenario_probs: np.ndarray
    status: SolverStatus
    extra: dict = field(default_factory=dict)

    @property
    def first_chi(self) -> bool:
        return bool(self.chi[0] > 0.5)

    @property
    def first_alpha(self) -> float:
        return float(self.alpha[0])

    def cost_std(self) -> float:
        mu = float(self.scenario_probs @ self.scenario_costs)
        var = float(self.scenario_probs @ (self.scenario_costs - mu) ** 2)
        return float(np.sqrt(max(var, 0.0)))


def solve_srrp_cvar(
    instance: SRRPInstance,
    risk_weight: float = 0.5,
    confidence: float = 0.9,
    backend: str = "auto",
) -> RiskAverseSRRPPlan:
    """Solve the mean-CVaR deterministic equivalent.

    Parameters
    ----------
    risk_weight:
        λ ∈ [0, 1]: 0 = paper's risk-neutral SRRP, 1 = pure CVaR.
    confidence:
        α ∈ (0, 1): tail level of the CVaR (0.9 = worst 10 % of scenarios).
    """
    if not 0.0 <= risk_weight <= 1.0:
        raise ValueError("risk_weight must be in [0, 1]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")

    tree = instance.tree
    c = instance.costs
    m = Model(f"srrp-cvar[{instance.vm_name}]")
    n = tree.num_nodes
    alpha = m.add_vars(n, "alpha")
    beta = m.add_vars(n, "beta")
    chi = m.add_vars(n, "chi", vtype="binary")
    remaining = np.concatenate([np.cumsum(instance.demand[::-1])[::-1], [0.0]])
    holding = c.holding

    for node in tree.nodes:
        t = node.depth
        prev = instance.initial_storage if node.parent < 0 else beta[node.parent]
        m.add_constr(prev + alpha[node.index] - beta[node.index] == float(instance.demand[t]))
        m.add_constr(alpha[node.index] <= max(float(remaining[t]), 1e-9) * chi[node.index])

    def node_cost(node):
        t = node.depth
        return (
            float(c.transfer_in[t]) * instance.phi * alpha[node.index]
            + float(holding[t]) * beta[node.index]
            + node.price * chi[node.index]
        )

    const_per_slot = float(c.transfer_out @ instance.demand)
    leaves = tree.leaves()
    probs = np.array([leaf.abs_prob for leaf in leaves])

    # per-scenario linear cost expressions
    scenario_exprs = []
    for leaf in leaves:
        path = tree.path(leaf.index)
        scenario_exprs.append(lin_sum(node_cost(nd) for nd in path) + const_per_slot)

    expected = lin_sum(p * e for p, e in zip(probs, scenario_exprs))

    eta = m.add_var("eta", lb=-1e6)
    z = m.add_vars(len(leaves), "z")
    for s, expr in enumerate(scenario_exprs):
        m.add_constr(z[s] >= expr - eta, name=f"cvar[{s}]")
    cvar_expr = eta + (1.0 / (1.0 - confidence)) * lin_sum(
        float(p) * z[s] for s, p in enumerate(probs)
    )

    m.set_objective((1.0 - risk_weight) * expected + risk_weight * cvar_expr)
    res = solve(m, backend=backend)
    if not res.status.has_solution:
        raise RuntimeError(f"mean-CVaR solve failed: {res.status.value}")

    alpha_v = np.array([res.value_of(v) for v in alpha])
    beta_v = np.array([res.value_of(v) for v in beta])
    chi_v = np.round(np.array([res.value_of(v) for v in chi]))
    costs = np.array(
        [
            expr.value({**{v: res.value_of(v) for v in alpha},
                        **{v: res.value_of(v) for v in beta},
                        **{v: res.value_of(v) for v in chi}})
            for expr in scenario_exprs
        ]
    )
    exp_cost = float(probs @ costs)
    eta_v = res.value_of(eta)
    cvar_v = eta_v + float(probs @ np.maximum(costs - eta_v, 0.0)) / (1.0 - confidence)
    return RiskAverseSRRPPlan(
        alpha=alpha_v, beta=beta_v, chi=chi_v,
        expected_cost=exp_cost, cvar=cvar_v, var=eta_v,
        objective=res.objective,
        risk_weight=risk_weight, confidence=confidence,
        scenario_costs=costs, scenario_probs=probs,
        status=res.status,
        extra={"nodes": res.nodes},
    )
