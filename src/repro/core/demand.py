"""Demand processes for the planning experiments.

The paper samples hourly per-instance data-service demand from N(0.4, 0.2)
GB, truncated positive (§V-A).  Additional generators support the examples
and the sensitivity sweep of Figure 11 (which varies the demand mean from
0.2 to 1.6 GB/hour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.rng import ensure_rng, truncated_normal

__all__ = ["DemandModel", "NormalDemand", "ConstantDemand", "DiurnalDemand", "BurstyDemand"]


@dataclass(frozen=True)
class DemandModel:
    """Interface: draw a demand vector for a horizon of T slots."""

    def sample(self, horizon: int, rng: int | np.random.Generator | None = None) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class NormalDemand(DemandModel):
    """Truncated-normal iid demand — the paper's N(0.4, 0.2) GB/hour."""

    mean: float = 0.4
    std: float = 0.2

    def sample(self, horizon: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        return truncated_normal(rng, self.mean, self.std, horizon, low=0.0)


@dataclass(frozen=True)
class ConstantDemand(DemandModel):
    """Deterministic flat demand (useful for analytic cross-checks)."""

    rate: float = 0.4

    def sample(self, horizon: int, rng=None) -> np.ndarray:
        if self.rate < 0:
            raise ValueError("demand rate must be nonnegative")
        return np.full(horizon, self.rate)


@dataclass(frozen=True)
class DiurnalDemand(DemandModel):
    """Sinusoidal day/night demand around a mean (SaaS-style load)."""

    mean: float = 0.4
    amplitude: float = 0.2
    period: int = 24
    noise_std: float = 0.05

    def sample(self, horizon: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        t = np.arange(horizon)
        base = self.mean + self.amplitude * np.sin(2 * np.pi * t / self.period)
        noisy = base + rng.normal(0.0, self.noise_std, size=horizon)
        return np.maximum(noisy, 0.0)


@dataclass(frozen=True)
class BurstyDemand(DemandModel):
    """Mostly-quiet demand with occasional heavy slots (batch drops)."""

    base: float = 0.1
    burst: float = 2.0
    burst_probability: float = 0.15

    def sample(self, horizon: int, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        bursts = rng.random(horizon) < self.burst_probability
        jitter = rng.uniform(0.8, 1.2, size=horizon)
        return np.where(bursts, self.burst, self.base) * jitter
