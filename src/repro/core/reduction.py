"""Scenario sampling and reduction — an alternative tree builder for SRRP.

The paper's bid-dependent dynamic sampling (§IV-C) coarsens the *marginal*
price distribution at every stage, which keeps the tree balanced but grows
it exponentially in the branching factor.  A standard alternative from the
stochastic-programming literature is **scenario reduction** (Heitsch &
Römisch's fast-forward selection): sample many full price *paths*, select
the k most representative under a transport-style distance, redistribute
the dropped paths' probability onto their nearest survivors, and solve the
two-stage fan tree over those k scenarios.

Provided here:

* :func:`sample_price_paths` — iid stage sampling from a (bid-truncated)
  empirical distribution;
* :func:`forward_selection` — the reduction algorithm itself (vectorized
  distance matrix; each round is one masked argmin over numpy arrays);
* :func:`fan_tree_from_paths` — a valid :class:`ScenarioTree` with all
  branching at stage 1 (each selected path becomes a deterministic chain);
* :class:`ReducedScenarioPolicy` — a drop-in rolling policy using this
  pipeline, benchmarked against the paper's construction in the tree
  ablation.
"""

from __future__ import annotations

import numpy as np

from repro.stats.empirical import EmpiricalDistribution
from repro.stats.rng import ensure_rng
from .scenario import ScenarioNode, ScenarioTree

__all__ = [
    "sample_price_paths",
    "bootstrap_price_paths",
    "forward_selection",
    "fan_tree_from_paths",
    "ReducedScenarioPolicy",
]


def sample_price_paths(
    base: EmpiricalDistribution,
    bids: np.ndarray,
    on_demand_price: float,
    n_paths: int,
    rng: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Sample ``(n_paths, len(bids))`` price paths, stage-independent.

    Each stage ``t`` draws from the base distribution truncated at
    ``bids[t]`` (out-of-bid mass at λ) — the same marginal the paper's
    sampler uses, but realized as joint paths for reduction.
    """
    rng = ensure_rng(rng)
    bids = np.asarray(bids, dtype=float)
    T = bids.shape[0]
    out = np.empty((n_paths, T))
    for t in range(T):
        d = base.truncate_at_bid(float(bids[t]), on_demand_price)
        out[:, t] = d.sample(rng, n_paths)
    return out


def bootstrap_price_paths(
    history: np.ndarray,
    bids: np.ndarray,
    on_demand_price: float,
    n_paths: int,
    rng: int | np.random.Generator | None = 0,
    block_length: int | None = None,
) -> np.ndarray:
    """Dependence-preserving alternative to :func:`sample_price_paths`.

    Paths come from a moving-block bootstrap of the price *history* (so
    consecutive stages inherit the real autocorrelation of Figure 7), then
    the out-of-bid rule is applied pointwise: any sampled price above that
    stage's bid is replaced by λ, exactly as eq. (10) reroutes the mass the
    bid cannot win.
    """
    from repro.timeseries.bootstrap import moving_block_bootstrap

    bids = np.asarray(bids, dtype=float)
    paths = moving_block_bootstrap(
        history, n_paths=n_paths, horizon=bids.shape[0],
        block_length=block_length, rng=rng,
    )
    out_of_bid = paths > bids[None, :]
    return np.where(out_of_bid, on_demand_price, paths)


def forward_selection(
    paths: np.ndarray,
    k: int,
    probs: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Fast-forward scenario selection.

    Parameters
    ----------
    paths:
        (N, T) scenario matrix.
    k:
        Number of scenarios to keep (1 <= k <= N).
    probs:
        Scenario probabilities (uniform if omitted).

    Returns
    -------
    (selected_indices, new_probs):
        Indices into ``paths`` of the kept scenarios, and their
        probabilities after redistribution (each dropped scenario's mass
        moves to its nearest kept scenario).
    """
    paths = np.asarray(paths, dtype=float)
    N = paths.shape[0]
    if not 1 <= k <= N:
        raise ValueError(f"k must be in [1, {N}]")
    p = np.full(N, 1.0 / N) if probs is None else np.asarray(probs, dtype=float)
    if p.shape != (N,) or abs(p.sum() - 1.0) > 1e-9:
        raise ValueError("probs must be length-N and sum to 1")

    # pairwise L1 distances, vectorized: (N, N)
    dist = np.abs(paths[:, None, :] - paths[None, :, :]).sum(axis=2)

    selected: list[int] = []
    # min distance from each scenario to the selected set
    min_dist = np.full(N, np.inf)
    for _ in range(k):
        if not selected:
            # pick the scenario minimizing sum_j p_j d(j, i)
            scores = dist @ p
        else:
            # marginal benefit of adding i: sum_j p_j min(min_dist_j, d(j,i))
            scores = (np.minimum(min_dist[:, None], dist) * p[:, None]).sum(axis=0)
        scores[selected] = np.inf
        i = int(np.argmin(scores))
        selected.append(i)
        np.minimum(min_dist, dist[:, i], out=min_dist)

    sel = np.array(sorted(selected))
    # redistribute: every scenario's mass goes to its nearest selected one
    nearest = sel[np.argmin(dist[:, sel], axis=1)]
    new_probs = np.zeros(sel.shape[0])
    for j in range(N):
        new_probs[np.searchsorted(sel, nearest[j])] += p[j]
    return sel, new_probs


def fan_tree_from_paths(
    root_price: float,
    paths: np.ndarray,
    probs: np.ndarray,
) -> ScenarioTree:
    """Two-stage fan tree: root, then one deterministic chain per scenario.

    All uncertainty resolves at stage 1 (a two-stage approximation of the
    multistage problem); the tree still satisfies every structural
    invariant of :class:`ScenarioTree`.
    """
    paths = np.asarray(paths, dtype=float)
    probs = np.asarray(probs, dtype=float)
    if paths.ndim != 2 or paths.shape[0] != probs.shape[0]:
        raise ValueError("paths and probs must align")
    if abs(probs.sum() - 1.0) > 1e-9:
        raise ValueError("probabilities must sum to 1")
    S, T_future = paths.shape
    nodes = [ScenarioNode(index=0, parent=-1, depth=0, price=float(root_price), cond_prob=1.0, abs_prob=1.0)]
    for s in range(S):
        parent = 0
        for t in range(T_future):
            cond = float(probs[s]) if t == 0 else 1.0
            node = ScenarioNode(
                index=len(nodes), parent=parent, depth=t + 1,
                price=float(paths[s, t]), cond_prob=cond,
                abs_prob=float(probs[s]),
            )
            nodes.append(node)
            nodes[parent].children.append(node.index)
            parent = node.index
    tree = ScenarioTree(nodes=nodes, horizon=T_future + 1)
    tree.validate()
    return tree


class ReducedScenarioPolicy:
    """Rolling SRRP over a reduced two-stage fan tree.

    Same interface as the other policies in :mod:`repro.core.rolling`;
    constructor mirrors :class:`~repro.core.rolling.StochasticPolicy` with
    sampling/reduction knobs instead of a branching factor.
    """

    def __init__(
        self,
        bid_strategy,
        lookahead: int = 6,
        n_samples: int = 64,
        n_keep: int = 8,
        backend: str = "auto",
        seed: int = 0,
        sampler: str = "iid",
        name: str | None = None,
    ) -> None:
        if sampler not in ("iid", "bootstrap"):
            raise ValueError("sampler must be 'iid' or 'bootstrap'")
        self.bid_strategy = bid_strategy
        self.lookahead = lookahead
        self.n_samples = n_samples
        self.n_keep = n_keep
        self.backend = backend
        self.seed = seed
        self.sampler = sampler
        self.name = name or f"sto-reduced-{bid_strategy.name}"

    def reset(self, ctx) -> None:  # Policy interface
        self._rng = np.random.default_rng(self.seed)

    def decide(self, ctx):
        from repro.market.auction import effective_hourly_price
        from .costs import on_demand_schedule
        from .rolling import SlotDecision
        from .srrp import SRRPInstance, solve_srrp

        if ctx.base_distribution is None:
            raise ValueError("ReducedScenarioPolicy requires a base price distribution")
        window = ctx.remaining_demand(self.lookahead)
        L = window.shape[0]
        bids = self.bid_strategy.bids(ctx.price_view(), L, t=ctx.t)
        root_price = effective_hourly_price(
            float(bids[0]), ctx.current_spot, ctx.vm.on_demand_price
        )
        if L == 1:
            tree = fan_tree_from_paths(root_price, np.zeros((1, 0)), np.array([1.0]))
        else:
            if self.sampler == "bootstrap":
                paths = bootstrap_price_paths(
                    ctx.price_view(), bids[1:], ctx.vm.on_demand_price,
                    self.n_samples, self._rng,
                )
            else:
                paths = sample_price_paths(
                    ctx.base_distribution, bids[1:], ctx.vm.on_demand_price,
                    self.n_samples, self._rng,
                )
            k = min(self.n_keep, self.n_samples)
            sel, probs = forward_selection(paths, k)
            tree = fan_tree_from_paths(root_price, paths[sel], probs)
        inst = SRRPInstance(
            demand=window,
            costs=on_demand_schedule(ctx.vm, L, ctx.rates),
            tree=tree,
            phi=ctx.rates.input_output_ratio,
            initial_storage=ctx.inventory,
            vm_name=ctx.vm.name,
        )
        plan = solve_srrp(inst, backend=self.backend)
        return SlotDecision(generate=plan.first_alpha, rent=plan.first_chi, bid=float(bids[0]))
