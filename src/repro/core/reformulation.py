"""Facility-location (extended) reformulation of DRRP.

The natural DRRP formulation (eqs. 1–7) has a weak LP relaxation: the
forcing constraint α_t ≤ B·χ_t lets the relaxation rent fractional slivers
of instances, so branch-and-bound on it explores thousands of nodes at
paper scale.  The classical fix for uncapacitated lot-sizing is the
*facility location* reformulation (Krarup & Bilde 1977): disaggregate
generation by destination slot,

    x[t, u] = data generated in slot t to serve demand of slot u ≥ t,

    min  Σ_t Cp(t)·χ_t + Σ_{t≤u} c[t, u]·x[t, u] + Σ_u C−f(u)·D(u)
    s.t. Σ_{t≤u} x[t, u] = D'(u)        for all u   (demand coverage)
         x[t, u] ≤ D'(u)·χ_t            for all t≤u (disaggregated forcing)
         x ≥ 0, χ ∈ {0,1}

with c[t, u] = C+f(t)·Φ + Σ_{v=t}^{u-1} (Cs+Cio)(v) the full unit cost of
serving u from t, and D' the ε-netted demands.  Its LP relaxation is
integral on uncapacitated instances — the MILP solves at the root node —
at the price of O(T²) variables.

This module provides the reformulated solve (exact same optimum and cost
decomposition as :func:`repro.core.drrp.solve_drrp`; property-tested), and
the ablation benchmark quantifies the node-count collapse.
"""

from __future__ import annotations

import numpy as np

from repro.solver import Model, SolverStatus, lin_sum, solve
from .drrp import DRRPInstance, RentalPlan

__all__ = ["build_facility_location_model", "solve_drrp_facility_location"]


def _netted_demand(instance: DRRPInstance) -> np.ndarray:
    """Demands after greedy consumption of the initial inventory ε."""
    demand = instance.demand.astype(float).copy()
    carry = instance.initial_storage
    for t in range(demand.shape[0]):
        if carry <= 1e-15:
            break
        used = min(carry, demand[t])
        demand[t] -= used
        carry -= used
    return demand


def build_facility_location_model(instance: DRRPInstance):
    """Construct the facility-location MILP; returns (model, x_vars, chi_vars).

    ``x_vars`` is a dict keyed by (t, u) for u ≥ t with D'(u) > 0.

    Raises
    ------
    ValueError
        For capacitated instances — the reformulation (like Wagner–Whitin)
        relies on uncapacitated generation.
    """
    if instance.bottleneck_rate is not None:
        raise ValueError("facility-location reformulation is for uncapacitated DRRP")
    T = instance.horizon
    c = instance.costs
    demand = _netted_demand(instance)
    holding = c.holding
    hold_prefix = np.concatenate([[0.0], np.cumsum(holding)])
    unit_gen = c.transfer_in * instance.phi

    m = Model(f"drrp-fl[{instance.vm_name}]")
    chi = m.add_vars(T, "chi", vtype="binary")
    x: dict[tuple[int, int], object] = {}
    positive = [u for u in range(T) if demand[u] > 1e-15]
    for u in positive:
        for t in range(u + 1):
            x[t, u] = m.add_var(f"x[{t},{u}]", lb=0.0, ub=float(demand[u]))

    for u in positive:
        m.add_constr(
            lin_sum(x[t, u] for t in range(u + 1)) == float(demand[u]),
            name=f"cover[{u}]",
        )
    for (t, u), var in x.items():
        m.add_constr(var <= float(demand[u]) * chi[t], name=f"force[{t},{u}]")

    objective = lin_sum(
        float(c.compute[t]) * chi[t] for t in range(T)
    ) + lin_sum(
        float(unit_gen[t] + (hold_prefix[u] - hold_prefix[t])) * var
        for (t, u), var in x.items()
    )
    # constant terms: transfer-out on the raw demand, holding on the ε part
    eps_beta_cost = 0.0
    carry = instance.initial_storage
    for t in range(T):
        carry = max(carry - instance.demand[t], 0.0)
        eps_beta_cost += holding[t] * carry
        if carry <= 0:
            break
    objective = objective + float(c.transfer_out @ instance.demand) + eps_beta_cost
    m.set_objective(objective)
    return m, x, chi


def solve_drrp_facility_location(instance: DRRPInstance, backend: str = "auto") -> RentalPlan:
    """Solve DRRP through the extended formulation; returns a standard plan.

    The returned :class:`RentalPlan` is expressed in the original (α, β, χ)
    variables, with the same cost decomposition as :func:`solve_drrp`.
    """
    model, x, chi_vars = build_facility_location_model(instance)
    res = solve(model, backend=backend)
    if not res.status.has_solution:
        raise RuntimeError(f"facility-location solve failed: {res.status.value}")
    T = instance.horizon
    alpha = np.zeros(T)
    for (t, _u), var in x.items():
        alpha[t] += res.value_of(var)
    chi = np.round(np.array([res.value_of(v) for v in chi_vars]))
    # zero out numerically-open but unused rentals
    for t in range(T):
        if alpha[t] <= 1e-9 and chi[t] > 0.5:
            chi[t] = 0.0
    beta = np.zeros(T)
    carry = instance.initial_storage
    for t in range(T):
        carry = max(carry + alpha[t] - instance.demand[t], 0.0)
        beta[t] = carry
    c = instance.costs
    compute = float(c.compute @ chi)
    inventory = float(c.holding @ beta)
    tin = float(c.transfer_in @ (instance.phi * alpha))
    tout = float(c.transfer_out @ instance.demand)
    return RentalPlan(
        alpha=alpha,
        beta=beta,
        chi=chi,
        compute_cost=compute,
        inventory_cost=inventory,
        transfer_in_cost=tin,
        transfer_out_cost=tout,
        objective=compute + inventory + tin + tout,
        status=res.status,
        vm_name=instance.vm_name,
        extra={"scheme": "facility-location", "nodes": res.nodes, "iterations": res.iterations},
    )
