"""The paper's core contribution: DRRP, SRRP, baselines, and simulation."""

from .costs import CostSchedule, on_demand_schedule, spot_schedule
from .demand import BurstyDemand, ConstantDemand, DemandModel, DiurnalDemand, NormalDemand
from .drrp import DRRPInstance, RentalPlan, build_drrp_model, solve_drrp
from .lotsizing import solve_wagner_whitin
from .noplan import solve_noplan
from .scenario import (
    ScenarioNode,
    ScenarioTree,
    bid_adjusted_stage_distributions,
    build_tree,
)
from .srrp import (
    SRRPInstance,
    SRRPPlan,
    build_srrp_model,
    solve_srrp,
    validate_nonanticipativity,
)
from .rolling import (
    DeterministicPolicy,
    NoPlanPolicy,
    OnDemandPolicy,
    OraclePolicy,
    Policy,
    SimulationContext,
    SimulationResult,
    SlotDecision,
    StochasticPolicy,
    simulate_policy,
)
from .planner import Planner, PolicyComparison
from .reformulation import build_facility_location_model, solve_drrp_facility_location
from .reduction import (
    ReducedScenarioPolicy,
    bootstrap_price_paths,
    fan_tree_from_paths,
    forward_selection,
    sample_price_paths,
)
from .value import StochasticValueReport, evaluate_stochastic_value
from .multiclass import MultiClassInstance, MultiClassPlan, solve_multiclass
from .risk import RiskAverseSRRPPlan, solve_srrp_cvar
from .sensitivity import DemandPriceReport, demand_shadow_prices
from .lagrangian import LagrangianResult, lagrangian_bound
from .demand_uncertainty import (
    JointSRRPInstance,
    JointSRRPPlan,
    build_joint_tree,
    solve_srrp_joint,
)

__all__ = [
    "CostSchedule",
    "on_demand_schedule",
    "spot_schedule",
    "BurstyDemand",
    "ConstantDemand",
    "DemandModel",
    "DiurnalDemand",
    "NormalDemand",
    "DRRPInstance",
    "RentalPlan",
    "build_drrp_model",
    "solve_drrp",
    "solve_wagner_whitin",
    "solve_noplan",
    "ScenarioNode",
    "ScenarioTree",
    "bid_adjusted_stage_distributions",
    "build_tree",
    "SRRPInstance",
    "SRRPPlan",
    "build_srrp_model",
    "solve_srrp",
    "validate_nonanticipativity",
    "DeterministicPolicy",
    "NoPlanPolicy",
    "OnDemandPolicy",
    "OraclePolicy",
    "Policy",
    "SimulationContext",
    "SimulationResult",
    "SlotDecision",
    "StochasticPolicy",
    "simulate_policy",
    "Planner",
    "PolicyComparison",
    "build_facility_location_model",
    "solve_drrp_facility_location",
    "ReducedScenarioPolicy",
    "bootstrap_price_paths",
    "fan_tree_from_paths",
    "forward_selection",
    "sample_price_paths",
    "StochasticValueReport",
    "evaluate_stochastic_value",
    "MultiClassInstance",
    "MultiClassPlan",
    "solve_multiclass",
    "RiskAverseSRRPPlan",
    "solve_srrp_cvar",
    "DemandPriceReport",
    "demand_shadow_prices",
    "LagrangianResult",
    "lagrangian_bound",
    "JointSRRPInstance",
    "JointSRRPPlan",
    "build_joint_tree",
    "solve_srrp_joint",
]
