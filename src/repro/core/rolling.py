"""Rolling-horizon simulation of rental policies under realized spot prices.

§V-D notes that "in practice, the resource rental planning is often
conducted in a rolling horizon fashion, i.e., a revised plan is issued
periodically ... to include the new information".  This module is that
practice: a simulator replays a realized hourly spot-price path and, slot
by slot, asks a policy for its here-and-now decision, charges the *actual*
cost (spot price on a win, the on-demand price λ on an out-of-bid event),
and rolls forward.

Policies provided (the five schemes of Figure 12(a) plus the baselines):

* :class:`OraclePolicy` — perfect price information fed to DRRP; its
  realized cost is the paper's *ideal case cost*, the denominator of every
  overpay percentage.
* :class:`OnDemandPolicy` — plans with DRRP but rents only on-demand
  instances at λ ("on-demand").
* :class:`DeterministicPolicy` — DRRP parameterized by bid prices from a
  :class:`~repro.market.auction.BidStrategy` ("det-predict" /
  "det-exp-mean" depending on the strategy).
* :class:`StochasticPolicy` — SRRP over a bid-adjusted scenario tree
  ("sto-predict" / "sto-exp-mean").
* :class:`NoPlanPolicy` — the reactive scheme of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction

import numpy as np

from repro.market.auction import BidStrategy, effective_hourly_price, is_out_of_bid
from repro.market.catalog import CostRates, VMClass
from repro.stats.empirical import EmpiricalDistribution
from .costs import CostSchedule, on_demand_schedule, spot_schedule
from .drrp import DRRPInstance, solve_drrp
from .scenario import bid_adjusted_stage_distributions, build_tree
from .srrp import SRRPInstance, solve_srrp

__all__ = [
    "SlotDecision",
    "SimulationContext",
    "SimulationResult",
    "Policy",
    "NoPlanPolicy",
    "OnDemandPolicy",
    "OraclePolicy",
    "DeterministicPolicy",
    "StochasticPolicy",
    "simulate_policy",
]


@dataclass(frozen=True)
class SlotDecision:
    """A policy's here-and-now action for one slot."""

    generate: float      # α for this slot (GB)
    rent: bool           # χ for this slot
    bid: float           # bid price submitted if renting spot (ignored otherwise)
    use_on_demand: bool = False  # rent from the on-demand market directly


@dataclass
class SimulationContext:
    """Everything a policy may look at when deciding (no future prices!).

    ``spot_history`` contains the pre-evaluation price history, prices for
    evaluation slots ``< t``, and the *current* slot ``t`` — the market
    publishes the current spot price, so policies may condition on it; they
    never see slots ``> t``.
    """

    vm: VMClass
    rates: CostRates
    demand: np.ndarray            # known demand over the whole evaluation window
    base_distribution: EmpiricalDistribution | None
    t: int = 0
    inventory: float = 0.0
    spot_history: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def horizon(self) -> int:
        return self.demand.shape[0]

    @property
    def current_spot(self) -> float:
        if self.spot_history.size == 0:
            raise ValueError(
                "no spot price observed yet: spot_history is empty (the "
                "simulator populates it before the first decide(); inside "
                "reset() no price has been published)"
            )
        return float(self.spot_history[-1])

    def price_view(self) -> np.ndarray:
        """The price history a policy (or bid strategy) may condition on.

        Per the class contract this is everything observed *through* the
        current slot ``t`` — the market publishes the current price — and
        never a slot beyond it.  Every ``BidStrategy.bids`` call site must
        pass this view, not a hand-rolled slice: ``spot_history[:-1]``
        hides the published current price, and anything longer would leak
        the future.
        """
        if self.spot_history.size == 0:
            raise ValueError(
                "no spot price observed yet: spot_history is empty (the "
                "simulator populates it before the first decide())"
            )
        return self.spot_history

    def remaining_demand(self, lookahead: int) -> np.ndarray:
        """Demand for slots t .. min(t+lookahead, H) (known, per the paper)."""
        return self.demand[self.t : min(self.t + lookahead, self.horizon)]


class Policy:
    """Interface: observe the context, emit a :class:`SlotDecision`."""

    name = "abstract"

    def reset(self, ctx: SimulationContext) -> None:
        """Called once before the first slot (oracle precomputation etc.)."""

    def decide(self, ctx: SimulationContext) -> SlotDecision:
        raise NotImplementedError


class NoPlanPolicy(Policy):
    """Generate each slot's unmet demand in that slot; never carry inventory."""

    name = "no-plan"

    def __init__(self, bid_strategy: BidStrategy | None = None) -> None:
        self.bid_strategy = bid_strategy

    def decide(self, ctx: SimulationContext) -> SlotDecision:
        shortfall = max(float(ctx.demand[ctx.t]) - ctx.inventory, 0.0)
        if shortfall <= 1e-12:
            return SlotDecision(generate=0.0, rent=False, bid=0.0)
        if self.bid_strategy is None:
            return SlotDecision(generate=shortfall, rent=True, bid=0.0, use_on_demand=True)
        bid = float(self.bid_strategy.bids(ctx.price_view(), 1, t=ctx.t)[0])
        return SlotDecision(generate=shortfall, rent=True, bid=bid)


class OnDemandPolicy(Policy):
    """DRRP planning, but rentals always go to the on-demand market at λ."""

    name = "on-demand"

    def __init__(self, lookahead: int = 24, backend: str = "auto") -> None:
        self.lookahead = lookahead
        self.backend = backend

    def decide(self, ctx: SimulationContext) -> SlotDecision:
        window = ctx.remaining_demand(self.lookahead)
        inst = DRRPInstance(
            demand=window,
            costs=on_demand_schedule(ctx.vm, window.shape[0], ctx.rates),
            phi=ctx.rates.input_output_ratio,
            initial_storage=ctx.inventory,
            vm_name=ctx.vm.name,
        )
        plan = solve_drrp(inst, backend=self.backend)
        return SlotDecision(
            generate=float(plan.alpha[0]), rent=bool(plan.chi[0] > 0.5),
            bid=0.0, use_on_demand=True,
        )


class OraclePolicy(Policy):
    """Perfect information: DRRP over the realized price path (ideal cost).

    The plan is precomputed once in :meth:`reset`, but :meth:`decide` does
    *not* replay ``alpha[t]`` blindly: the simulated inventory can diverge
    from the plan's (an out-of-bid interruption losing work, a forced
    top-up, the simulator's nonnegativity clamp), and a blind replay would
    then undershoot demand.  Each slot reconciles against *realized*
    inventory: with ``deficit = planned_entry_inventory[t] - actual``, the
    issued generation is ``max(alpha[t] + deficit, 0)``, which restores the
    planned end-of-slot inventory exactly — by plan feasibility
    ``actual + alpha[t] + deficit = beta[t-1] + alpha[t] >= demand[t]``, so
    demand stays covered whatever the divergence was.
    """

    name = "oracle"

    def __init__(self, realized_spot: np.ndarray, backend: str = "auto") -> None:
        self.realized_spot = np.asarray(realized_spot, dtype=float)
        self.backend = backend
        self._plan = None
        self._entry_inventory: np.ndarray | None = None

    def reset(self, ctx: SimulationContext) -> None:
        if self.realized_spot.shape[0] < ctx.horizon:
            raise ValueError("oracle needs realized prices for the whole window")
        inst = DRRPInstance(
            demand=ctx.demand,
            costs=spot_schedule(ctx.vm, self.realized_spot[: ctx.horizon], ctx.rates),
            phi=ctx.rates.input_output_ratio,
            initial_storage=ctx.inventory,
            vm_name=ctx.vm.name,
        )
        self._plan = solve_drrp(inst, backend=self.backend)
        # Inventory the plan expects entering each slot: beta[t-1], with the
        # initial storage in front — the reconciliation reference.
        self._entry_inventory = np.concatenate(
            [[float(ctx.inventory)], self._plan.beta[:-1]]
        )

    def decide(self, ctx: SimulationContext) -> SlotDecision:
        t = ctx.t
        deficit = float(self._entry_inventory[t]) - ctx.inventory
        gen = max(float(self._plan.alpha[t]) + deficit, 0.0)
        rent = gen > 1e-12 or bool(self._plan.chi[t] > 0.5)
        # Bidding the realized price always wins the auction.
        return SlotDecision(generate=gen, rent=rent, bid=float(self.realized_spot[t]))


class DeterministicPolicy(Policy):
    """Rolling DRRP with bid prices as the assumed compute cost.

    Each slot, the bid strategy maps the observed price history to bids
    over the lookahead; DRRP treats those bids as deterministic prices and
    the first-slot decision is executed with the *realized* price.
    """

    def __init__(
        self,
        bid_strategy: BidStrategy,
        lookahead: int = 6,
        backend: str = "auto",
        name: str | None = None,
    ) -> None:
        self.bid_strategy = bid_strategy
        self.lookahead = lookahead
        self.backend = backend
        self.name = name or f"det-{bid_strategy.name}"

    def decide(self, ctx: SimulationContext) -> SlotDecision:
        window = ctx.remaining_demand(self.lookahead)
        L = window.shape[0]
        bids = self.bid_strategy.bids(ctx.price_view(), L, t=ctx.t)
        # What deterministic planning believes it will pay: the bid caps the
        # spot payment on a win; it cannot see out-of-bid risk.
        inst = DRRPInstance(
            demand=window,
            costs=spot_schedule(ctx.vm, bids, ctx.rates),
            phi=ctx.rates.input_output_ratio,
            initial_storage=ctx.inventory,
            vm_name=ctx.vm.name,
        )
        plan = solve_drrp(inst, backend=self.backend)
        return SlotDecision(
            generate=float(plan.alpha[0]), rent=bool(plan.chi[0] > 0.5), bid=float(bids[0])
        )


class StochasticPolicy(Policy):
    """Rolling SRRP over a bid-adjusted scenario tree (§IV-C/E).

    The root stage carries the *known* current price a rental would pay
    (effective price of bidding now); later stages carry the truncated
    base distribution with out-of-bid mass collapsed onto λ.
    """

    def __init__(
        self,
        bid_strategy: BidStrategy,
        lookahead: int = 6,
        max_branching: int = 3,
        backend: str = "auto",
        name: str | None = None,
    ) -> None:
        self.bid_strategy = bid_strategy
        self.lookahead = lookahead
        self.max_branching = max_branching
        self.backend = backend
        self.name = name or f"sto-{bid_strategy.name}"

    def decide(self, ctx: SimulationContext) -> SlotDecision:
        if ctx.base_distribution is None:
            raise ValueError("StochasticPolicy requires a base price distribution")
        window = ctx.remaining_demand(self.lookahead)
        L = window.shape[0]
        bids = self.bid_strategy.bids(ctx.price_view(), L, t=ctx.t)
        root_price = effective_hourly_price(float(bids[0]), ctx.current_spot, ctx.vm.on_demand_price)
        stage_dists = bid_adjusted_stage_distributions(
            ctx.base_distribution, bids[1:], ctx.vm.on_demand_price, self.max_branching
        )
        tree = build_tree(root_price, stage_dists)
        inst = SRRPInstance(
            demand=window,
            costs=on_demand_schedule(ctx.vm, L, ctx.rates),  # compute column overridden per vertex
            tree=tree,
            phi=ctx.rates.input_output_ratio,
            initial_storage=ctx.inventory,
            vm_name=ctx.vm.name,
        )
        plan = solve_srrp(inst, backend=self.backend)
        return SlotDecision(
            generate=plan.first_alpha, rent=plan.first_chi, bid=float(bids[0])
        )


@dataclass
class SimulationResult:
    """Realized-cost accounting for one policy run.

    The reported totals are *exact* rational sums of the per-slot cost
    records (``paid_prices``, ``holding_costs``, ``transfer_in_costs``),
    accumulated in :class:`fractions.Fraction` arithmetic and rounded once
    at the end — so an independent checker (``repro.verify.frac_sum``) can
    re-derive every total from the arrays with zero tolerance, whatever
    order it sums in.
    """

    policy: str
    total_cost: float
    compute_cost: float
    inventory_cost: float
    transfer_in_cost: float
    transfer_out_cost: float
    out_of_bid_events: int
    rentals: int
    generated: np.ndarray
    inventory: np.ndarray
    paid_prices: np.ndarray
    forced_topups: int = 0
    lost_gb: float = 0.0
    holding_costs: np.ndarray | None = None       # per-slot (Cs+Cio)·β_t
    transfer_in_costs: np.ndarray | None = None   # per-slot C+f·Φ·(α_t + lost_t)
    out_of_bid: np.ndarray | None = None          # per-slot eviction marker (bool)

    def cost_shares(self) -> dict[str, float]:
        total = self.total_cost or 1.0
        return {
            "compute": self.compute_cost / total,
            "io_storage": self.inventory_cost / total,
            "transfer": (self.transfer_in_cost + self.transfer_out_cost) / total,
        }


def simulate_policy(
    policy: Policy,
    realized_spot: np.ndarray,
    demand: np.ndarray,
    vm: VMClass,
    rates: CostRates | None = None,
    base_distribution: EmpiricalDistribution | None = None,
    initial_storage: float = 0.0,
    price_history: np.ndarray | None = None,
    interruption_loss: float = 0.0,
) -> SimulationResult:
    """Replay one policy against a realized price path.

    ``price_history`` is the pre-evaluation price record the bid strategies
    condition on (e.g. the two-month estimation window); it is prepended to
    the observed prices a policy may see.

    ``interruption_loss`` extends the paper's instant-failover assumption:
    on an out-of-bid event, that fraction of the slot's generated data is
    lost to the interruption (work since the last checkpoint) and is
    regenerated on the on-demand fallback instance in the same slot — the
    rental is already paid, but the repeated input fetch costs transfer-in
    again.  ``0.0`` (default) is the paper's model.

    The simulator enforces demand satisfaction: if a policy's decision
    leaves a shortfall, the slot is topped up (renting if necessary) and
    the event counted in ``forced_topups`` — a correctness backstop, not a
    cost optimization.
    """
    if not 0.0 <= interruption_loss < 1.0:
        raise ValueError("interruption_loss must be in [0, 1)")
    realized_spot = np.asarray(realized_spot, dtype=float)
    demand = np.asarray(demand, dtype=float)
    H = demand.shape[0]
    if realized_spot.shape[0] < H:
        raise ValueError("need a realized price for every slot")
    rates = rates or CostRates()
    ctx = SimulationContext(
        vm=vm, rates=rates, demand=demand,
        base_distribution=base_distribution,
        inventory=initial_storage,
    )
    policy.reset(ctx)

    holding = rates.storage_per_gb_hour + rates.io_per_gb
    lost = 0.0
    oob = rentals = topups = 0
    generated = np.zeros(H)
    inv_traj = np.zeros(H)
    paid = np.zeros(H)
    holding_costs = np.zeros(H)
    tin_costs = np.zeros(H)
    oob_mask = np.zeros(H, dtype=bool)

    prefix = np.zeros(0) if price_history is None else np.asarray(price_history, dtype=float)

    for t in range(H):
        ctx.t = t
        ctx.spot_history = np.concatenate([prefix, realized_spot[: t + 1]])
        d = policy.decide(ctx)
        gen = max(float(d.generate), 0.0)
        rent = bool(d.rent)
        shortfall = float(demand[t]) - (ctx.inventory + gen)
        if shortfall > 1e-9:
            gen += shortfall
            if not rent:
                rent = True
            topups += 1
        if gen > 1e-12 and not rent:
            rent = True  # generation requires a running instance
        lost_here = 0.0
        if rent:
            rentals += 1
            if d.use_on_demand:
                price = vm.on_demand_price
            else:
                price = effective_hourly_price(d.bid, float(realized_spot[t]), vm.on_demand_price)
                if is_out_of_bid(d.bid, float(realized_spot[t])):
                    oob += 1
                    oob_mask[t] = True
                    lost_here = interruption_loss * gen
            paid[t] = price
        lost += lost_here
        # regenerating lost work re-fetches its input data
        tin_costs[t] = rates.transfer_in_per_gb * rates.input_output_ratio * (gen + lost_here)
        ctx.inventory = ctx.inventory + gen - float(demand[t])
        ctx.inventory = max(ctx.inventory, 0.0)
        holding_costs[t] = holding * ctx.inventory
        generated[t] = gen
        inv_traj[t] = ctx.inventory

    # Exact totals: Fractions sum the per-slot float costs losslessly, so
    # the reported numbers are order-independent and re-derivable by an
    # independent checker with zero tolerance (see SimulationResult).
    compute = Fraction(0)
    inv_cost = Fraction(0)
    tin = Fraction(0)
    for t in range(H):
        compute += Fraction(float(paid[t]))
        inv_cost += Fraction(float(holding_costs[t]))
        tin += Fraction(float(tin_costs[t]))
    tout = Fraction(float(rates.transfer_out_per_gb)) * sum(
        (Fraction(float(x)) for x in demand), Fraction(0)
    )
    total = compute + inv_cost + tin + tout
    return SimulationResult(
        policy=policy.name,
        total_cost=float(total),
        compute_cost=float(compute),
        inventory_cost=float(inv_cost),
        transfer_in_cost=float(tin),
        transfer_out_cost=float(tout),
        out_of_bid_events=oob,
        rentals=rentals,
        generated=generated,
        inventory=inv_traj,
        paid_prices=paid,
        forced_topups=topups,
        lost_gb=lost,
        holding_costs=holding_costs,
        transfer_in_costs=tin_costs,
        out_of_bid=oob_mask,
    )
