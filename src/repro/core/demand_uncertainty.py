"""SRRP under joint price *and* demand uncertainty — the paper's future work.

The paper closes with: "Our future work will investigate stochastic
optimization solutions for cloud resource provisioning with time-varying
workloads."  This module is that model: the scenario tree branches over
the product of a price distribution and a demand distribution per stage,
and the deterministic equivalent becomes

    min  Σ_v p_v [ C+f·Φ·α_v + (Cs+Cio)·β_v + C−f·d_v + Cp(v)·χ_v ]
    s.t. β_{π(v)} + α_v − β_v = d_v      (vertex-specific demand)
         α_v ≤ B·χ_v,  β_{π(root)} = ε,  α, β ≥ 0, χ ∈ {0,1}

i.e. eq. (13)–(19) with D(τ(v)) replaced by a vertex realization d_v.
Non-anticipativity still comes free from the vertex indexing.

When every vertex of a stage carries the same demand, the model collapses
to the paper's SRRP exactly (property-tested), so this is a strict
generalization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.solver import Model, SolverStatus, lin_sum, solve
from .costs import CostSchedule
from .scenario import ScenarioNode, ScenarioTree

__all__ = ["JointSRRPInstance", "JointSRRPPlan", "build_joint_tree", "solve_srrp_joint"]


def build_joint_tree(
    root_price: float,
    root_demand: float,
    stage_price_dists: list[tuple[np.ndarray, np.ndarray]],
    stage_demand_dists: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[ScenarioTree, np.ndarray]:
    """Tree over the per-stage product of price × demand distributions.

    Price and demand are treated as independent at each stage (their joint
    probability is the product); correlated uncertainty can be expressed by
    passing a single joint support through the price distribution and a
    constant demand, or by building nodes directly.

    Returns the tree plus ``node_demand`` (demand realization per vertex).
    """
    if len(stage_price_dists) != len(stage_demand_dists):
        raise ValueError("need one demand distribution per price stage")
    T = 1 + len(stage_price_dists)
    nodes = [ScenarioNode(index=0, parent=-1, depth=0, price=float(root_price), cond_prob=1.0, abs_prob=1.0)]
    node_demand = [float(root_demand)]
    frontier = [0]
    for depth in range(1, T):
        p_vals, p_probs = stage_price_dists[depth - 1]
        d_vals, d_probs = stage_demand_dists[depth - 1]
        p_vals = np.asarray(p_vals, dtype=float)
        p_probs = np.asarray(p_probs, dtype=float)
        d_vals = np.asarray(d_vals, dtype=float)
        d_probs = np.asarray(d_probs, dtype=float)
        for probs, what in ((p_probs, "price"), (d_probs, "demand")):
            if abs(probs.sum() - 1.0) > 1e-9:
                raise ValueError(f"stage {depth} {what} probabilities sum to {probs.sum()}")
        if np.any(d_vals < 0):
            raise ValueError("demand realizations must be nonnegative")
        new_frontier = []
        for parent_idx in frontier:
            parent = nodes[parent_idx]
            for pv, pp in zip(p_vals, p_probs):
                for dv, dp in zip(d_vals, d_probs):
                    cond = float(pp * dp)
                    node = ScenarioNode(
                        index=len(nodes), parent=parent_idx, depth=depth,
                        price=float(pv), cond_prob=cond,
                        abs_prob=parent.abs_prob * cond,
                    )
                    nodes.append(node)
                    node_demand.append(float(dv))
                    parent.children.append(node.index)
                    new_frontier.append(node.index)
        frontier = new_frontier
    tree = ScenarioTree(nodes=nodes, horizon=T)
    tree.validate()
    return tree, np.asarray(node_demand)


@dataclass(frozen=True)
class JointSRRPInstance:
    """SRRP data with vertex-specific demand realizations."""

    costs: CostSchedule
    tree: ScenarioTree
    node_demand: np.ndarray
    phi: float = 0.5
    initial_storage: float = 0.0
    vm_name: str = "vm"

    def __post_init__(self) -> None:
        nd = np.asarray(self.node_demand, dtype=float)
        object.__setattr__(self, "node_demand", nd)
        if nd.shape != (self.tree.num_nodes,):
            raise ValueError("node_demand must have one entry per tree vertex")
        if np.any(nd < 0):
            raise ValueError("demand must be nonnegative")
        if self.costs.horizon != self.tree.horizon:
            raise ValueError("cost schedule must span the tree horizon")
        if self.initial_storage < 0:
            raise ValueError("initial storage must be nonnegative")

    @property
    def horizon(self) -> int:
        return self.tree.horizon

    def max_path_demand(self) -> float:
        """Upper bound on total demand along any scenario (forcing bound)."""
        best = np.zeros(self.tree.num_nodes)
        total = 0.0
        for node in self.tree.nodes:  # BFS order: parents precede children
            prev = best[node.parent] if node.parent >= 0 else 0.0
            best[node.index] = prev + self.node_demand[node.index]
            total = max(total, best[node.index])
        return float(total)


@dataclass
class JointSRRPPlan:
    """Solved joint-uncertainty policy (vertex-indexed recourse)."""

    alpha: np.ndarray
    beta: np.ndarray
    chi: np.ndarray
    expected_cost: float
    status: SolverStatus
    tree: ScenarioTree
    vm_name: str = "vm"
    extra: dict = field(default_factory=dict)

    @property
    def first_alpha(self) -> float:
        return float(self.alpha[0])

    @property
    def first_chi(self) -> bool:
        return bool(self.chi[0] > 0.5)

    def validate(self, instance: JointSRRPInstance, tol: float = 1e-6) -> None:
        B = max(instance.max_path_demand() - instance.initial_storage, 1e-9)
        for node in instance.tree.nodes:
            prev = instance.initial_storage if node.parent < 0 else self.beta[node.parent]
            lhs = prev + self.alpha[node.index] - self.beta[node.index]
            if abs(lhs - instance.node_demand[node.index]) > tol:
                raise AssertionError(f"balance violated at vertex {node.index}")
            if self.alpha[node.index] > B * (self.chi[node.index] > 0.5) + tol:
                raise AssertionError(f"forcing violated at vertex {node.index}")


def solve_srrp_joint(instance: JointSRRPInstance, backend: str = "auto") -> JointSRRPPlan:
    """Solve the joint-uncertainty deterministic equivalent."""
    tree = instance.tree
    c = instance.costs
    m = Model(f"srrp-joint[{instance.vm_name}]")
    n = tree.num_nodes
    alpha = m.add_vars(n, "alpha")
    beta = m.add_vars(n, "beta")
    chi = m.add_vars(n, "chi", vtype="binary")
    holding = c.holding
    B = max(instance.max_path_demand() - instance.initial_storage, 1e-9)

    for node in tree.nodes:
        prev = instance.initial_storage if node.parent < 0 else beta[node.parent]
        m.add_constr(
            prev + alpha[node.index] - beta[node.index]
            == float(instance.node_demand[node.index]),
            name=f"balance[{node.index}]",
        )
        m.add_constr(alpha[node.index] <= B * chi[node.index], name=f"forcing[{node.index}]")

    terms = []
    const = 0.0
    for node in tree.nodes:
        t = node.depth
        p = node.abs_prob
        terms.append(
            p
            * (
                float(c.transfer_in[t]) * instance.phi * alpha[node.index]
                + float(holding[t]) * beta[node.index]
                + node.price * chi[node.index]
            )
        )
        const += p * float(c.transfer_out[t]) * float(instance.node_demand[node.index])
    m.set_objective(lin_sum(terms) + const)

    res = solve(m, backend=backend)
    if not res.status.has_solution:
        raise RuntimeError(f"joint SRRP solve failed: {res.status.value}")
    return JointSRRPPlan(
        alpha=np.maximum(np.array([res.value_of(v) for v in alpha]), 0.0),
        beta=np.maximum(np.array([res.value_of(v) for v in beta]), 0.0),
        chi=np.round(np.array([res.value_of(v) for v in chi])),
        expected_cost=res.objective,
        status=res.status,
        tree=tree,
        vm_name=instance.vm_name,
        extra={"nodes": res.nodes, "tree_size": n},
    )
