"""Lagrangian relaxation of DRRP's forcing constraints.

Dualizing α_t ≤ B_t·χ_t with multipliers μ ≥ 0 splits DRRP into two
trivially solvable pieces:

* a **rental subproblem** per slot — χ_t = 1 iff Cp(t) < μ_t·B_t
  (rent exactly when the subsidy for opening capacity beats the price);
* a **flow subproblem** — serve each demand from its cheapest source slot
  under the inflated unit cost (C+f·Φ + μ)_t plus holding, which a single
  forward pass computes in O(T) (running minimum of source costs).

``L(μ)`` lower-bounds the DRRP optimum for every μ ≥ 0; projected
subgradient ascent tightens it.  Because *both* subproblems have the
integrality property, the best Lagrangian bound provably equals the
natural formulation's LP-relaxation bound — strictly weaker than the
facility-location relaxation (which is integral).  The bound-comparison
benchmark documents exactly that hierarchy:

    LP(natural) == max_mu L(mu)  <=  LP(facility-location) == OPT

Useful in its own right as a solver-free bound (no LP solves at all) and
as a dual-guided heuristic: the final χ(μ) pattern seeds a feasible plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .drrp import DRRPInstance

__all__ = ["LagrangianResult", "lagrangian_bound"]


@dataclass
class LagrangianResult:
    """Outcome of the subgradient ascent.

    ``best_bound`` is a valid lower bound on the DRRP optimum;
    ``heuristic_cost`` the cost of the feasible plan recovered from the
    final multipliers (an upper bound); ``trace`` the per-iteration bounds.
    """

    best_bound: float
    multipliers: np.ndarray
    heuristic_cost: float
    iterations: int
    trace: list[float] = field(default_factory=list)

    @property
    def gap(self) -> float:
        """Relative gap between the heuristic plan and the bound."""
        if self.best_bound <= 0:
            return float("inf")
        return (self.heuristic_cost - self.best_bound) / self.best_bound


def _forcing_bounds(instance: DRRPInstance) -> np.ndarray:
    remaining = np.concatenate([np.cumsum(instance.demand[::-1])[::-1], [0.0]])[:-1]
    return np.maximum(remaining, 1e-9)


def _netted_demand(instance: DRRPInstance) -> np.ndarray:
    demand = instance.demand.astype(float).copy()
    carry = instance.initial_storage
    for t in range(demand.shape[0]):
        if carry <= 1e-15:
            break
        used = min(carry, demand[t])
        demand[t] -= used
        carry -= used
    return demand


def _eps_holding_constant(instance: DRRPInstance) -> float:
    holding = instance.costs.holding
    carry = instance.initial_storage
    total = 0.0
    for t in range(instance.horizon):
        carry = max(carry - instance.demand[t], 0.0)
        total += holding[t] * carry
        if carry <= 0:
            break
    return float(total)


def _evaluate(instance: DRRPInstance, mu: np.ndarray):
    """Solve both subproblems at μ; returns (L(μ), subgradient, χ(μ))."""
    c = instance.costs
    T = instance.horizon
    demand = _netted_demand(instance)
    B = _forcing_bounds(instance)
    holding = c.holding
    hold_prefix = np.concatenate([[0.0], np.cumsum(holding)])

    # rental subproblem
    rent_score = c.compute - mu * B
    chi = (rent_score < 0).astype(float)
    rental_value = float(np.minimum(rent_score, 0.0).sum())

    # flow subproblem: cheapest source for each demand slot u is
    # argmin_{t<=u} (unit[t] - hold_prefix[t]) + hold_prefix[u]
    unit = c.transfer_in * instance.phi + mu
    keyed = unit - hold_prefix[:-1]
    best_key = np.minimum.accumulate(keyed)
    best_src = np.zeros(T, dtype=int)
    # recover argmins of the running minimum
    current = 0
    for t in range(T):
        if keyed[t] <= keyed[current]:
            current = t
        best_src[t] = current
    # cost of serving demand[u] from best source s(u):
    serve_cost = best_key + hold_prefix[:T]  # = unit[s] + (hold_prefix[u] - hold_prefix[s])
    flow_value = float(demand @ serve_cost)

    alpha = np.zeros(T)
    np.add.at(alpha, best_src, demand)

    const = float(c.transfer_out @ instance.demand) + _eps_holding_constant(instance)
    value = rental_value + flow_value + const
    subgradient = alpha - B * chi
    return value, subgradient, chi, alpha


def _heuristic_cost(instance: DRRPInstance, alpha: np.ndarray) -> float:
    """Cost of the feasible plan implied by a generation vector."""
    c = instance.costs
    T = instance.horizon
    chi = (alpha > 1e-12).astype(float)
    beta = np.zeros(T)
    carry = instance.initial_storage
    for t in range(T):
        carry = max(carry + alpha[t] - instance.demand[t], 0.0)
        beta[t] = carry
    return float(
        c.compute @ chi
        + c.holding @ beta
        + c.transfer_in @ (instance.phi * alpha)
        + c.transfer_out @ instance.demand
    )


def lagrangian_bound(
    instance: DRRPInstance,
    iterations: int = 200,
    initial_step: float = 1.0,
    seed_multipliers: np.ndarray | None = None,
) -> LagrangianResult:
    """Maximize L(μ) by projected subgradient ascent (Polyak-style steps).

    Raises
    ------
    ValueError
        For capacitated instances (the flow subproblem ignores eq. (3)).
    """
    if instance.bottleneck_rate is not None:
        raise ValueError("Lagrangian relaxation implemented for uncapacitated DRRP")
    T = instance.horizon
    mu = np.zeros(T) if seed_multipliers is None else np.asarray(seed_multipliers, float).copy()
    if mu.shape != (T,):
        raise ValueError("seed multipliers must have length T")

    best_bound = -np.inf
    best_mu = mu.copy()
    trace: list[float] = []
    best_heuristic = np.inf

    # the heuristic plan gives a valid upper bound for Polyak steps, and
    # tightens as the ascent proceeds
    ub = _heuristic_cost(instance, _netted_demand(instance))
    scale = initial_step
    stall = 0

    for k in range(iterations):
        value, g, chi, alpha = _evaluate(instance, mu)
        trace.append(value)
        if value > best_bound + 1e-12:
            best_bound = value
            best_mu = mu.copy()
            stall = 0
        else:
            stall += 1
            if stall >= 10:
                scale *= 0.5  # classic halving schedule on stagnation
                stall = 0
        ub = min(ub, _heuristic_cost(instance, alpha))
        best_heuristic = min(best_heuristic, ub)
        norm2 = float(g @ g)
        if norm2 <= 1e-18 or scale < 1e-8:
            break  # dual-optimal or step exhausted
        step = scale * max(ub - value, 1e-9) / norm2
        mu = np.maximum(mu + step * g, 0.0)

    return LagrangianResult(
        best_bound=best_bound,
        multipliers=best_mu,
        heuristic_cost=best_heuristic,
        iterations=len(trace),
        trace=trace,
    )
