"""Stochastic Resource Rental Planning — the paper's SRRP model (§IV).

SRRP minimizes the *expected* rental cost over the price uncertainty
encoded in a scenario tree.  Following §IV-E we solve the deterministic
equivalent: every DRRP variable becomes a family of vertex-indexed recourse
variables, and the inventory balance links each vertex to its parent —
which enforces non-anticipativity structurally (a decision at vertex v is
shared by every scenario whose path passes through v):

    min  Σ_v p_v [ C+f·Φ·α_v + (Cs+Cio)·β_v + C−f·D(τ(v)) + Cp(v)·χ_v ]   (13)
    s.t. β_{π(v)} + α_v − β_v = D(τ(v))                                   (14)
         α_v ≤ B·χ_v                                                      (16)
         β_root-parent = ε                                                (17)
         α, β ≥ 0, χ ∈ {0,1}                                              (18–19)

The bottleneck rows (15) are omitted exactly as §V-A omits them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.solver import Model, SolverStatus, lin_sum, solve
from .costs import CostSchedule
from .scenario import ScenarioTree

__all__ = [
    "SRRPInstance",
    "SRRPPlan",
    "build_srrp_model",
    "solve_srrp",
    "validate_nonanticipativity",
]


@dataclass(frozen=True)
class SRRPInstance:
    """A stochastic planning problem over a scenario tree.

    ``costs`` supplies the deterministic cost components (storage, I/O,
    transfer); the per-slot compute price comes from the tree's vertices.
    ``demand`` must span the tree horizon.
    """

    demand: np.ndarray
    costs: CostSchedule
    tree: ScenarioTree
    phi: float = 0.5
    initial_storage: float = 0.0
    vm_name: str = "vm"

    def __post_init__(self) -> None:
        demand = np.asarray(self.demand, dtype=float)
        object.__setattr__(self, "demand", demand)
        if demand.shape[0] != self.tree.horizon:
            raise ValueError(
                f"demand length {demand.shape[0]} != tree horizon {self.tree.horizon}"
            )
        if demand.shape[0] != self.costs.horizon:
            raise ValueError("cost schedule must span the tree horizon")
        if np.any(demand < 0):
            raise ValueError("demand must be nonnegative")
        if self.initial_storage < 0:
            raise ValueError("initial storage must be nonnegative")

    @property
    def horizon(self) -> int:
        return self.tree.horizon

    @property
    def forcing_bound(self) -> float:
        return float(max(self.demand.sum() - self.initial_storage, 0.0)) or 1.0


@dataclass
class SRRPPlan:
    """Solved SRRP policy.

    ``alpha`` / ``beta`` / ``chi`` are vertex-indexed (the full recourse
    policy); ``first_alpha`` / ``first_chi`` are the root (here-and-now)
    decisions a rolling-horizon controller implements.  ``expected_cost``
    is objective (13).
    """

    alpha: np.ndarray
    beta: np.ndarray
    chi: np.ndarray
    expected_cost: float
    status: SolverStatus
    tree: ScenarioTree
    vm_name: str = "vm"
    extra: dict = field(default_factory=dict)

    @property
    def first_alpha(self) -> float:
        return float(self.alpha[0])

    @property
    def first_chi(self) -> bool:
        return bool(self.chi[0] > 0.5)

    def decisions_for_scenario(self, leaf_index: int) -> dict[str, np.ndarray]:
        """The (α, β, χ) path a given scenario would execute."""
        path = self.tree.path(leaf_index)
        idx = [n.index for n in path]
        return {
            "alpha": self.alpha[idx],
            "beta": self.beta[idx],
            "chi": self.chi[idx],
            "prices": np.array([n.price for n in path]),
        }

    def validate(self, instance: SRRPInstance, tol: float = 1e-6) -> None:
        """Check every SRRP constraint of the policy (test helper).

        Raises :class:`AssertionError` with the violating vertex and the
        magnitude of the violation: inventory balance (14), the forcing
        bound (16), nonnegativity (18) and the binary rental marker (19).
        """
        n = instance.tree.num_nodes
        for name, arr in (("alpha", self.alpha), ("beta", self.beta), ("chi", self.chi)):
            if np.asarray(arr).shape != (n,):
                raise AssertionError(
                    f"{name} must be vertex-indexed with length {n}, got shape {np.asarray(arr).shape}"
                )
        for node in instance.tree.nodes:
            v = node.index
            if self.alpha[v] < -tol or self.beta[v] < -tol:
                raise AssertionError(
                    f"negative quantity at vertex {v}: alpha={self.alpha[v]:.6g}, beta={self.beta[v]:.6g}"
                )
            if min(abs(self.chi[v]), abs(self.chi[v] - 1.0)) > tol:
                raise AssertionError(f"chi[{v}]={self.chi[v]:.6g} is not binary")
            prev = instance.initial_storage if node.parent < 0 else self.beta[node.parent]
            lhs = prev + self.alpha[v] - self.beta[v]
            if abs(lhs - instance.demand[node.depth]) > tol:
                raise AssertionError(
                    f"balance violated at vertex {v}: residual {lhs - instance.demand[node.depth]:.6g}"
                )
            cap = instance.forcing_bound * (self.chi[v] > 0.5)
            if self.alpha[v] > cap + tol:
                raise AssertionError(
                    f"forcing violated at vertex {v}: alpha={self.alpha[v]:.6g} > "
                    f"bound {cap:.6g} (chi={self.chi[v]:.6g})"
                )


def validate_nonanticipativity(
    tree: ScenarioTree,
    scenario_decisions: dict[int, dict[str, np.ndarray]],
    tol: float = 1e-6,
) -> None:
    """Check that per-scenario decision paths agree on shared vertices.

    ``scenario_decisions`` maps a leaf index to the arrays a scenario
    would execute along its root path (the shape returned by
    :meth:`SRRPPlan.decisions_for_scenario`).  Vertex-indexed policies
    satisfy non-anticipativity by construction, but decisions that were
    reconstructed, transported, or tampered with per scenario can diverge
    where their histories are still identical — two scenarios through the
    same vertex prescribing different here-and-now actions.  Raises
    :class:`AssertionError` naming the shared vertex and both scenarios.
    """
    seen: dict[tuple[int, str], tuple[int, float]] = {}
    for leaf_index, decisions in scenario_decisions.items():
        path = tree.path(leaf_index)
        for step, node in enumerate(path):
            for name in ("alpha", "beta", "chi"):
                if name not in decisions:
                    continue
                value = float(np.asarray(decisions[name])[step])
                key = (node.index, name)
                if key in seen:
                    other_leaf, other_value = seen[key]
                    if abs(value - other_value) > tol:
                        raise AssertionError(
                            f"non-anticipativity violated at vertex {node.index} "
                            f"(stage {node.depth}): scenario {other_leaf} has "
                            f"{name}={other_value:.6g} but scenario {leaf_index} "
                            f"has {name}={value:.6g}"
                        )
                else:
                    seen[key] = (leaf_index, value)


def build_srrp_model(instance: SRRPInstance) -> tuple[Model, dict[str, list]]:
    """Construct the deterministic-equivalent MILP over the scenario tree."""
    tree = instance.tree
    c = instance.costs
    m = Model(f"srrp[{instance.vm_name}]")
    n = tree.num_nodes
    alpha = m.add_vars(n, "alpha")
    beta = m.add_vars(n, "beta")
    chi = m.add_vars(n, "chi", vtype="binary")
    holding = c.holding
    # Per-stage forcing bound (see build_drrp_model): generation at a vertex
    # never usefully exceeds the demand still ahead of its stage.
    remaining = np.concatenate([np.cumsum(instance.demand[::-1])[::-1], [0.0]])

    for node in tree.nodes:
        t = node.depth
        prev = instance.initial_storage if node.parent < 0 else beta[node.parent]
        m.add_constr(
            prev + alpha[node.index] - beta[node.index] == float(instance.demand[t]),
            name=f"balance[{node.index}]",
        )
        B_t = max(float(remaining[t]), 1e-9)
        m.add_constr(alpha[node.index] <= B_t * chi[node.index], name=f"forcing[{node.index}]")

    const_term = 0.0
    terms = []
    for node in tree.nodes:
        t = node.depth
        p = node.abs_prob
        terms.append(
            p
            * (
                float(c.transfer_in[t]) * instance.phi * alpha[node.index]
                + float(holding[t]) * beta[node.index]
                + node.price * chi[node.index]
            )
        )
        const_term += p * float(c.transfer_out[t]) * float(instance.demand[t])
    m.set_objective(lin_sum(terms) + const_term)
    return m, {"alpha": alpha, "beta": beta, "chi": chi}


def solve_srrp(instance: SRRPInstance, backend: str = "auto", **solve_kwargs) -> SRRPPlan:
    """Solve the deterministic equivalent and extract the recourse policy.

    ``solve_kwargs`` forward to :func:`repro.solver.solve`, so
    ``listener=`` (telemetry events) and ``deadline=``/``time_limit=``
    (wall-clock budget) work here exactly as on the raw solver: an expired
    deadline yields the best incumbent policy with status ``FEASIBLE``
    rather than hanging on a large scenario tree.
    """
    model, vars_ = build_srrp_model(instance)
    res = solve(model, backend=backend, **solve_kwargs)
    if not res.status.has_solution:
        raise RuntimeError(f"SRRP solve failed with status {res.status.value}")
    alpha = np.maximum(np.array([res.value_of(v) for v in vars_["alpha"]]), 0.0)
    beta = np.maximum(np.array([res.value_of(v) for v in vars_["beta"]]), 0.0)
    chi = np.round(np.array([res.value_of(v) for v in vars_["chi"]]))
    return SRRPPlan(
        alpha=alpha,
        beta=beta,
        chi=chi,
        expected_cost=res.objective,
        status=res.status,
        tree=instance.tree,
        vm_name=instance.vm_name,
        extra={
            "nodes": res.nodes,
            "iterations": res.iterations,
            "tree_size": instance.tree.num_nodes,
            "wall_time": res.extra.get("wall_time"),
        },
    )
