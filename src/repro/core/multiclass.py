"""Joint planning across VM classes (the paper's full Σ_{i∈I} objective).

The paper's DRRP objective sums over all classes ``i ∈ I`` but, absent any
coupling constraint, the problem separates and §V solves per class.  This
module provides both views:

* the **separable** path — per-class solves, summed (and a test asserts it
  equals the joint model, a nontrivial consistency check of the builder);
* a genuinely **coupled** model with the two couplings a real ASP faces:

  - a shared cloud-storage budget: Σ_i β_{i,t} ≤ S_max for every slot
    (one storage account backing all classes), and
  - an optional per-slot rental budget: Σ_i Cp(i,t)·χ_{i,t} ≤ B_t
    (spend caps set by finance).

Each class keeps its own demand stream, cost schedule, and Φ.  With the
scaling of §III-B (n instances each serving 1/n of demand), per-class
demand here is already per-instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.solver import Model, SolverStatus, lin_sum, solve
from .drrp import DRRPInstance, RentalPlan, solve_drrp

__all__ = ["MultiClassInstance", "MultiClassPlan", "solve_multiclass"]


@dataclass(frozen=True)
class MultiClassInstance:
    """A set of per-class DRRP problems plus optional coupling constraints.

    Attributes
    ----------
    instances:
        One :class:`DRRPInstance` per class (equal horizons).
    storage_budget:
        Per-slot cap on total stored data across classes (GB); ``None``
        disables the coupling.
    rental_budget:
        Per-slot cap on total instantaneous rental spend ($/slot);
        ``None`` disables it.
    """

    instances: tuple[DRRPInstance, ...]
    storage_budget: float | None = None
    rental_budget: float | None = None

    def __post_init__(self) -> None:
        if not self.instances:
            raise ValueError("need at least one class instance")
        horizons = {inst.horizon for inst in self.instances}
        if len(horizons) != 1:
            raise ValueError(f"all classes must share one horizon, got {horizons}")
        if self.storage_budget is not None and self.storage_budget < 0:
            raise ValueError("storage budget must be nonnegative")
        if self.rental_budget is not None and self.rental_budget <= 0:
            raise ValueError("rental budget must be positive")

    @property
    def horizon(self) -> int:
        return self.instances[0].horizon

    @property
    def is_coupled(self) -> bool:
        return self.storage_budget is not None or self.rental_budget is not None


@dataclass
class MultiClassPlan:
    """Joint solution: one :class:`RentalPlan` per class plus totals."""

    plans: dict[str, RentalPlan]
    total_cost: float
    status: SolverStatus
    extra: dict = field(default_factory=dict)

    def peak_total_storage(self) -> float:
        stacked = np.sum([p.beta for p in self.plans.values()], axis=0)
        return float(stacked.max()) if stacked.size else 0.0


def _extract_plan(inst: DRRPInstance, alpha, beta, chi) -> RentalPlan:
    c = inst.costs
    compute = float(c.compute @ chi)
    inventory = float(c.holding @ beta)
    tin = float(c.transfer_in @ (inst.phi * alpha))
    tout = float(c.transfer_out @ inst.demand)
    return RentalPlan(
        alpha=alpha, beta=beta, chi=chi,
        compute_cost=compute, inventory_cost=inventory,
        transfer_in_cost=tin, transfer_out_cost=tout,
        objective=compute + inventory + tin + tout,
        status=SolverStatus.OPTIMAL,
        vm_name=inst.vm_name,
    )


def solve_multiclass(
    problem: MultiClassInstance,
    backend: str = "auto",
) -> MultiClassPlan:
    """Solve the joint problem.

    Uncoupled instances take the fast separable path (per-class solves);
    coupled instances build one MILP with the budget rows added.
    """
    if not problem.is_coupled:
        plans = {
            inst.vm_name: solve_drrp(inst, backend=backend)
            for inst in problem.instances
        }
        return MultiClassPlan(
            plans=plans,
            total_cost=float(sum(p.total_cost for p in plans.values())),
            status=SolverStatus.OPTIMAL,
            extra={"path": "separable"},
        )

    T = problem.horizon
    m = Model("multiclass-drrp")
    per_class = []
    objective_terms = []
    constant = 0.0
    for inst in problem.instances:
        c = inst.costs
        alpha = m.add_vars(T, f"alpha[{inst.vm_name}]")
        beta = m.add_vars(T, f"beta[{inst.vm_name}]")
        chi = m.add_vars(T, f"chi[{inst.vm_name}]", vtype="binary")
        remaining = np.concatenate([np.cumsum(inst.demand[::-1])[::-1], [0.0]])
        for t in range(T):
            prev = beta[t - 1] if t > 0 else inst.initial_storage
            m.add_constr(prev + alpha[t] - beta[t] == float(inst.demand[t]))
            m.add_constr(alpha[t] <= max(float(remaining[t]), 1e-9) * chi[t])
            if inst.bottleneck_rate is not None:
                m.add_constr(
                    inst.bottleneck_rate * alpha[t] <= float(inst.bottleneck_capacity[t])
                )
        holding = c.holding
        objective_terms.append(
            lin_sum(
                float(c.transfer_in[t]) * inst.phi * alpha[t]
                + float(holding[t]) * beta[t]
                + float(c.compute[t]) * chi[t]
                for t in range(T)
            )
        )
        constant += float(c.transfer_out @ inst.demand)
        per_class.append((inst, alpha, beta, chi))

    for t in range(T):
        if problem.storage_budget is not None:
            m.add_constr(
                lin_sum(beta[t] for (_i, _a, beta, _c) in per_class)
                <= problem.storage_budget,
                name=f"storage_budget[{t}]",
            )
        if problem.rental_budget is not None:
            m.add_constr(
                lin_sum(
                    float(inst.costs.compute[t]) * chi[t]
                    for (inst, _a, _b, chi) in per_class
                )
                <= problem.rental_budget,
                name=f"rental_budget[{t}]",
            )

    m.set_objective(lin_sum(objective_terms) + constant)
    res = solve(m, backend=backend)
    if not res.status.has_solution:
        raise RuntimeError(f"multiclass solve failed: {res.status.value}")

    plans = {}
    for inst, alpha, beta, chi in per_class:
        plans[inst.vm_name] = _extract_plan(
            inst,
            np.array([res.value_of(v) for v in alpha]),
            np.array([res.value_of(v) for v in beta]),
            np.round(np.array([res.value_of(v) for v in chi])),
        )
    return MultiClassPlan(
        plans=plans,
        total_cost=res.objective,
        status=res.status,
        extra={"path": "joint", "nodes": res.nodes},
    )
