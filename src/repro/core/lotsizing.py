"""Wagner–Whitin dynamic program for the uncapacitated lot-sizing core.

The paper observes that DRRP "is consistent with the dynamic lot-sizing
problem".  With the bottleneck constraint omitted (as in §V-A) and linear
costs, DRRP *is* uncapacitated single-item lot-sizing, for which the
Wagner–Whitin zero-inventory-ordering property holds: some optimal plan
generates data only when (net) incoming inventory is zero, each generation
covering a contiguous run of future demand.

Initial inventory ε is handled by the standard netting transformation:
greedy consumption of ε against the earliest demand is optimal (holding
costs are nonnegative), splits total inventory into a constant ε part and
the produced part, and leaves a zero-initial-inventory problem on the *net*
demands — over which production may still occur in **any** slot, including
slots whose own net demand is zero (producing early at a cheap setup can
beat producing at the first uncovered slot; the MILP cross-check property
test pins this case down).

That yields an exact O(T²) DP — used both as an independent oracle for the
MILP (they must agree to numerical tolerance on every instance) and as a
fast solver path for long deterministic horizons.
"""

from __future__ import annotations

import numpy as np

from repro.solver import SolverStatus
from .drrp import DRRPInstance, RentalPlan

__all__ = ["solve_wagner_whitin"]

_EPS = 1e-12


def solve_wagner_whitin(instance: DRRPInstance) -> RentalPlan:
    """Exact DP solution of an uncapacitated DRRP instance.

    Raises
    ------
    ValueError
        If the instance has a bottleneck constraint (the zero-inventory
        property needs uncapacitated generation — use the MILP instead).
    """
    if instance.bottleneck_rate is not None:
        raise ValueError("Wagner-Whitin applies to uncapacitated instances only")

    T = instance.horizon
    c = instance.costs
    holding = c.holding
    phi = instance.phi
    unit_gen = c.transfer_in * phi
    setup = c.compute

    # Net demands after ε is consumed greedily from the front.
    demand = instance.demand.astype(float).copy()
    carry = instance.initial_storage
    for t in range(T):
        if carry <= _EPS:
            break
        used = min(carry, demand[t])
        demand[t] -= used
        carry -= used

    cum = np.concatenate([[0.0], np.cumsum(demand)])
    hold_prefix = np.concatenate([[0.0], np.cumsum(holding)])

    INF = float("inf")
    best = np.full(T + 1, INF)   # best[j]: min cost serving net demand of [0, j)
    choice = np.full(T + 1, -1, dtype=int)  # production slot, or -2 for "skip"
    best[0] = 0.0

    for j in range(T):
        # Skip transition: slot j has no net demand, extend the plan for [0, j).
        if demand[j] <= _EPS and best[j] < best[j + 1]:
            best[j + 1] = best[j]
            choice[j + 1] = -2
        # Produce at any slot t <= j, covering net demand of [t, j].
        for t in range(j + 1):
            if best[t] >= INF:
                continue
            qty = cum[j + 1] - cum[t]
            if qty <= _EPS:
                continue
            # each unit consumed in slot u sits in inventory ends t..u-1
            us = np.arange(t, j + 1)
            hold_cost = float(demand[us] @ (hold_prefix[us] - hold_prefix[t]))
            cand = best[t] + setup[t] + unit_gen[t] * qty + hold_cost
            if cand < best[j + 1] - 1e-15:
                best[j + 1] = cand
                choice[j + 1] = t

    # Reconstruct generation decisions.
    alpha = np.zeros(T)
    chi = np.zeros(T)
    j = T
    while j > 0:
        t = choice[j]
        if t == -2:
            j -= 1
            continue
        if t < 0:
            raise RuntimeError("Wagner-Whitin reconstruction failed")  # pragma: no cover
        alpha[t] += cum[j] - cum[t]
        chi[t] = 1.0
        j = t

    # Rebuild the full inventory trajectory against the ORIGINAL demands
    # (this re-absorbs the ε part and its holding cost).
    beta = np.zeros(T)
    carry = instance.initial_storage
    for t in range(T):
        carry = max(carry + alpha[t] - instance.demand[t], 0.0)
        beta[t] = carry
    compute = float(setup @ chi)
    inventory = float(holding @ beta)
    tin = float(c.transfer_in @ (phi * alpha))
    tout = float(c.transfer_out @ instance.demand)
    return RentalPlan(
        alpha=alpha,
        beta=beta,
        chi=chi,
        compute_cost=compute,
        inventory_cost=inventory,
        transfer_in_cost=tin,
        transfer_out_cost=tout,
        objective=compute + inventory + tin + tout,
        status=SolverStatus.OPTIMAL,
        vm_name=instance.vm_name,
        extra={"scheme": "wagner-whitin"},
    )
