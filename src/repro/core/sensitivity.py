"""Planning-level sensitivity: what is a marginal GB of demand worth?

Fixing the optimal rental pattern χ* and reading the duals of the
inventory-balance rows gives the *marginal serving cost* per slot — the
price signal an ASP would quote a customer for one more GB requested in
slot t, under the current plan.  Slots served out of inventory inherit the
(generation + holding) cost of the slot that produced for them; slots
generating fresh data see the local generation cost.

Built on :func:`repro.solver.sensitivity.lp_sensitivity`; the MILP's
integer decisions are frozen first (standard fix-and-price analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.solver.sensitivity import lp_sensitivity
from .drrp import DRRPInstance, RentalPlan, build_drrp_model, solve_drrp

__all__ = ["DemandPriceReport", "demand_shadow_prices"]


@dataclass(frozen=True)
class DemandPriceReport:
    """Marginal cost per GB of demand, per slot, under a fixed plan."""

    marginal_cost: np.ndarray  # length T, $/GB
    plan: RentalPlan

    @property
    def horizon(self) -> int:
        return self.marginal_cost.shape[0]

    def most_expensive_slot(self) -> int:
        return int(np.argmax(self.marginal_cost))


def demand_shadow_prices(
    instance: DRRPInstance,
    plan: RentalPlan | None = None,
    backend: str = "auto",
) -> DemandPriceReport:
    """Compute per-slot marginal serving costs for a DRRP instance.

    Parameters
    ----------
    instance:
        The planning problem.
    plan:
        A solved plan whose rental pattern to freeze; solved fresh if
        omitted.
    """
    if plan is None:
        plan = solve_drrp(instance, backend=backend)
    model, vars_ = build_drrp_model(instance)
    # freeze the integer pattern: chi_t == chi*_t
    for t, chi_var in enumerate(vars_["chi"]):
        model.add_constr(chi_var == float(plan.chi[t]), name=f"fix_chi[{t}]")
    compiled = model.compile()
    compiled.integrality[:] = 0  # now a pure LP
    report = lp_sensitivity(compiled)
    # balance rows are the first T equality rows by construction order;
    # identify them by name through the model's constraints instead of
    # relying on position arithmetic.
    eq_names = [c.name for c in model.constraints if c.sense.value == "=="]
    marginals = {}
    for name, dual in zip(eq_names, report.duals_eq):
        if name.startswith("balance["):
            t = int(name[len("balance[") : -1])
            marginals[t] = dual
    T = instance.horizon
    marginal = np.array([marginals.get(t, 0.0) for t in range(T)])
    # add the transfer-out cost, which the objective charges per GB of
    # demand directly (a constant in the model, but real marginal cost)
    marginal = marginal + instance.costs.transfer_out
    return DemandPriceReport(marginal_cost=marginal, plan=plan)
