"""Deterministic Resource Rental Planning — the paper's DRRP model (§III).

The MILP, for one VM class (the problem is separable across classes, and
the paper plans per instance):

    min  Σ_t [ C+f(t)·Φ·α_t  +  (Cs(t)+Cio(t))·β_t  +  C−f(t)·D(t)  +  Cp(t)·χ_t ]
    s.t. β_{t-1} + α_t − β_t = D(t)          (inventory balance, eq. 2)
         P·α_t ≤ Q(t)                        (bottleneck, eq. 3; optional)
         α_t ≤ B·χ_t                         (forcing, eq. 4)
         β_0 = ε                             (initial inventory, eq. 5)
         α, β ≥ 0, χ ∈ {0,1}                 (eqs. 6–7)

``α_t`` is the data generated in slot ``t``, ``β_t`` the inventory at the
end of ``t``, ``χ_t`` the rental decision.  This is the dynamic lot-sizing
structure the paper points out: χ = setup, α = production, β = inventory.

``B`` defaults to the tightest valid bound, total remaining demand — a
*much* stronger forcing constraint than an arbitrary big-M, which keeps the
LP relaxation tight and branch-and-bound shallow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.solver import Model, SolverStatus, lin_sum, solve
from .costs import CostSchedule

__all__ = ["DRRPInstance", "RentalPlan", "build_drrp_model", "solve_drrp"]


@dataclass(frozen=True)
class DRRPInstance:
    """One per-instance planning problem.

    Attributes
    ----------
    demand:
        D(t): requested data volume per slot (GB).
    costs:
        Cost schedule over the same horizon.
    phi:
        Φ, the application's average input/output ratio (input data fetched
        per GB generated).
    initial_storage:
        ε of eq. (5).
    bottleneck_rate / bottleneck_capacity:
        P and Q(t) of eq. (3); ``None`` omits the constraint, as §V-A does
        ("the VMs are able to offer sufficient resources").
    vm_name:
        Label carried through to plans and reports.
    """

    demand: np.ndarray
    costs: CostSchedule
    phi: float = 0.5
    initial_storage: float = 0.0
    bottleneck_rate: float | None = None
    bottleneck_capacity: np.ndarray | None = None
    vm_name: str = "vm"

    def __post_init__(self) -> None:
        demand = np.asarray(self.demand, dtype=float)
        object.__setattr__(self, "demand", demand)
        if demand.ndim != 1 or demand.size == 0:
            raise ValueError("demand must be a nonempty 1-D array")
        if np.any(demand < 0):
            raise ValueError("demand must be nonnegative")
        if demand.shape[0] != self.costs.horizon:
            raise ValueError(
                f"demand length {demand.shape[0]} != cost horizon {self.costs.horizon}"
            )
        if self.phi < 0:
            raise ValueError("phi must be nonnegative")
        if self.initial_storage < 0:
            raise ValueError("initial storage must be nonnegative")
        if (self.bottleneck_rate is None) != (self.bottleneck_capacity is None):
            raise ValueError("bottleneck rate and capacity must be given together")
        if self.bottleneck_capacity is not None:
            cap = np.asarray(self.bottleneck_capacity, dtype=float)
            object.__setattr__(self, "bottleneck_capacity", cap)
            if cap.shape != demand.shape:
                raise ValueError("bottleneck capacity must match the horizon")

    @property
    def horizon(self) -> int:
        return self.demand.shape[0]

    @property
    def forcing_bound(self) -> float:
        """Tightest valid B: no slot ever generates more than total unmet demand."""
        return float(max(self.demand.sum() - self.initial_storage, 0.0)) or 1.0

    @classmethod
    def example(cls, horizon: int = 24, seed: int = 7) -> "DRRPInstance":
        """The paper's §V-A setup for m1.large over a 24 h horizon."""
        from repro.market import ec2_catalog
        from .costs import on_demand_schedule
        from .demand import NormalDemand

        vm = ec2_catalog()["m1.large"]
        return cls(
            demand=NormalDemand().sample(horizon, seed),
            costs=on_demand_schedule(vm, horizon),
            vm_name=vm.name,
        )


@dataclass
class RentalPlan:
    """A solved rental plan plus its cost decomposition (all in $)."""

    alpha: np.ndarray
    beta: np.ndarray
    chi: np.ndarray
    compute_cost: float
    inventory_cost: float
    transfer_in_cost: float
    transfer_out_cost: float
    objective: float
    status: SolverStatus
    vm_name: str = "vm"
    extra: dict = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        return self.objective

    @property
    def rent_slots(self) -> np.ndarray:
        """Indices of slots in which an instance is rented."""
        return np.nonzero(self.chi > 0.5)[0]

    @property
    def rental_frequency(self) -> float:
        """Fraction of slots with an active rental."""
        return float(np.mean(self.chi > 0.5))

    def cost_shares(self) -> dict[str, float]:
        """Fractional breakdown (Figure 10, lower panel)."""
        total = self.total_cost
        if total <= 0:
            return {"compute": 0.0, "io_storage": 0.0, "transfer": 0.0}
        return {
            "compute": self.compute_cost / total,
            "io_storage": self.inventory_cost / total,
            "transfer": (self.transfer_in_cost + self.transfer_out_cost) / total,
        }

    def validate(self, instance: DRRPInstance, tol: float = 1e-6) -> None:
        """Assert the plan satisfies every DRRP constraint (test helper)."""
        prev = instance.initial_storage
        for t in range(instance.horizon):
            balance = prev + self.alpha[t] - self.beta[t] - instance.demand[t]
            if abs(balance) > tol:
                raise AssertionError(f"inventory balance violated at t={t}: {balance}")
            if self.alpha[t] > instance.forcing_bound * (self.chi[t] > 0.5) + tol:
                raise AssertionError(f"forcing constraint violated at t={t}")
            if self.alpha[t] < -tol or self.beta[t] < -tol:
                raise AssertionError(f"negative quantity at t={t}")
            prev = self.beta[t]


def build_drrp_model(instance: DRRPInstance) -> tuple[Model, dict[str, list]]:
    """Construct the DRRP MILP; returns the model and its variable handles."""
    T = instance.horizon
    c = instance.costs
    m = Model(f"drrp[{instance.vm_name}]")
    alpha = m.add_vars(T, "alpha")
    beta = m.add_vars(T, "beta")
    chi = m.add_vars(T, "chi", vtype="binary")
    # Per-slot forcing bound: no optimal plan generates more in slot t than
    # the total demand still ahead of it.  Far tighter than one global big-M
    # (the LP relaxation's fractional chi values scale as alpha/B, so a loose
    # B makes branch-and-bound explore thousands of nodes on 24 h instances).
    remaining = np.concatenate([np.cumsum(instance.demand[::-1])[::-1], [0.0]])

    for t in range(T):
        prev = beta[t - 1] if t > 0 else instance.initial_storage
        m.add_constr(prev + alpha[t] - beta[t] == float(instance.demand[t]), name=f"balance[{t}]")
        B_t = max(float(remaining[t]), 1e-9)
        m.add_constr(alpha[t] <= B_t * chi[t], name=f"forcing[{t}]")
        if instance.bottleneck_rate is not None:
            m.add_constr(
                instance.bottleneck_rate * alpha[t] <= float(instance.bottleneck_capacity[t]),
                name=f"bottleneck[{t}]",
            )

    holding = c.holding
    m.set_objective(
        lin_sum(
            float(c.transfer_in[t]) * instance.phi * alpha[t]
            + float(holding[t]) * beta[t]
            + float(c.compute[t]) * chi[t]
            for t in range(T)
        )
        + float(c.transfer_out @ instance.demand)
    )
    return m, {"alpha": alpha, "beta": beta, "chi": chi}


def solve_drrp(
    instance: DRRPInstance,
    backend: str = "auto",
    warm_start: bool = False,
    **solve_kwargs,
) -> RentalPlan:
    """Solve DRRP and return the plan with its cost decomposition.

    ``warm_start=True`` seeds branch-and-bound backends with the
    Wagner-Whitin plan as the initial incumbent (uncapacitated instances
    only; a no-op for the HiGHS backend, which takes no injected
    incumbents).

    Telemetry and deadlines pass straight through ``solve_kwargs``:
    ``solve_drrp(inst, listener=recorder, time_limit=0.5)`` streams solve
    events to ``recorder`` and caps the whole solve at half a second (the
    best incumbent plan is returned with status ``FEASIBLE`` on expiry).

    A deadline that expires before *any* incumbent is found (e.g.
    ``time_limit=0``, or an already-expired ``Deadline``) does not raise:
    for uncapacitated instances the Wagner-Whitin plan is returned as the
    incumbent with status ``TIME_LIMIT``, so a zero budget degrades to the
    polynomial-time planner instead of an error.

    Raises
    ------
    RuntimeError
        If the MILP terminates without a solution and no Wagner-Whitin
        fallback applies (DRRP with nonnegative demand and free inventory
        is always feasible, so this indicates a solver failure rather
        than a modeling condition).
    """
    model, vars_ = build_drrp_model(instance)
    if warm_start and instance.bottleneck_rate is None and backend in ("bb-scipy", "simplex", "simplex+cuts"):
        from .lotsizing import solve_wagner_whitin
        from repro.solver import BranchAndBoundOptions

        ww = solve_wagner_whitin(instance)
        x0 = np.concatenate([ww.alpha, ww.beta, ww.chi])
        opts = solve_kwargs.get("bb_options") or BranchAndBoundOptions()
        solve_kwargs["bb_options"] = BranchAndBoundOptions(
            **{**opts.__dict__, "initial_incumbent": x0}
        )
    res = solve(model, backend=backend, **solve_kwargs)
    if not res.status.has_solution:
        if res.status is SolverStatus.TIME_LIMIT and instance.bottleneck_rate is None:
            from .lotsizing import solve_wagner_whitin

            ww = solve_wagner_whitin(instance)
            ww.status = SolverStatus.TIME_LIMIT
            ww.extra["fallback"] = "wagner-whitin"
            ww.extra["solver_status"] = res.status.value
            return ww
        raise RuntimeError(f"DRRP solve failed with status {res.status.value}")
    # LP vertices can carry -1e-17 noise on nonnegative variables; clamp so
    # downstream consumers (e.g. chaining beta[-1] into the next instance's
    # initial storage) never see negative quantities.
    alpha = np.maximum(np.array([res.value_of(v) for v in vars_["alpha"]]), 0.0)
    beta = np.maximum(np.array([res.value_of(v) for v in vars_["beta"]]), 0.0)
    chi = np.round(np.array([res.value_of(v) for v in vars_["chi"]]))
    c = instance.costs
    return RentalPlan(
        alpha=alpha,
        beta=beta,
        chi=chi,
        compute_cost=float(c.compute @ chi),
        inventory_cost=float(c.holding @ beta),
        transfer_in_cost=float(c.transfer_in @ (instance.phi * alpha)),
        transfer_out_cost=float(c.transfer_out @ instance.demand),
        objective=res.objective,
        status=res.status,
        vm_name=instance.vm_name,
        extra={
            "nodes": res.nodes,
            "iterations": res.iterations,
            "wall_time": res.extra.get("wall_time"),
        },
    )
