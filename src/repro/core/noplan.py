"""The no-planning baseline (Figure 10's comparison scheme).

Without planning, the ASP keeps an instance rented in every slot with
positive demand and generates exactly that slot's demand on the fly: no
inventory is carried, so no storage/IO cost accrues, but the full rental
cost is paid every active slot.  This is the natural "reactive" behaviour
of an elastic application that never looks ahead.
"""

from __future__ import annotations

import numpy as np

from repro.solver import SolverStatus
from .drrp import DRRPInstance, RentalPlan

__all__ = ["solve_noplan"]


def solve_noplan(instance: DRRPInstance) -> RentalPlan:
    """Evaluate the no-planning scheme on a DRRP instance.

    Initial storage (ε) is drawn down greedily before any generation, so the
    baseline is not charged for demand the inventory already covers.
    """
    T = instance.horizon
    demand = instance.demand
    alpha = np.zeros(T)
    beta = np.zeros(T)
    chi = np.zeros(T)
    carry = instance.initial_storage
    for t in range(T):
        need = demand[t]
        used = min(carry, need)
        carry -= used
        need -= used
        beta[t] = carry
        if need > 1e-12:
            alpha[t] = need
            chi[t] = 1.0
    c = instance.costs
    compute = float(c.compute @ chi)
    inventory = float(c.holding @ beta)
    tin = float(c.transfer_in @ (instance.phi * alpha))
    tout = float(c.transfer_out @ demand)
    return RentalPlan(
        alpha=alpha,
        beta=beta,
        chi=chi,
        compute_cost=compute,
        inventory_cost=inventory,
        transfer_in_cost=tin,
        transfer_out_cost=tout,
        objective=compute + inventory + tin + tout,
        status=SolverStatus.OPTIMAL,
        vm_name=instance.vm_name,
        extra={"scheme": "no-plan"},
    )
