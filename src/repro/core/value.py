"""Classic stochastic-programming value metrics for SRRP.

Quantifies *why* the stochastic model is worth its complexity — the
textbook companions to the paper's empirical Figure 12(a):

* **WS** (wait-and-see): expected cost if the planner could observe each
  scenario's prices before deciding — solve DRRP per scenario, take the
  probability-weighted mean.  This is the in-model analogue of the paper's
  "ideal case cost".
* **SP**: the SRRP optimum itself (here-and-now under uncertainty).
* **EEV**: expected cost of the *expected-value policy* — solve DRRP at
  the per-stage mean prices, then force SRRP to follow that plan's
  decisions wherever they are price-independent (we fix the rental pattern
  per stage, the strongest deterministic commitment the tree admits).

Then ``EVPI = SP - WS ≥ 0`` (value of perfect information) and
``VSS = EEV - SP ≥ 0`` (value of the stochastic solution).  Both
inequalities are verified by property tests; ``EVPI``/``VSS`` are reported
by the extension experiment ``ext_value.run()``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .costs import CostSchedule
from .drrp import DRRPInstance, solve_drrp
from .srrp import SRRPInstance, build_srrp_model, solve_srrp

__all__ = ["StochasticValueReport", "evaluate_stochastic_value"]


@dataclass(frozen=True)
class StochasticValueReport:
    """WS ≤ SP ≤ EEV, and the derived EVPI/VSS."""

    wait_and_see: float
    stochastic: float
    expected_value_policy: float

    @property
    def evpi(self) -> float:
        """What perfect price forecasts would be worth."""
        return self.stochastic - self.wait_and_see

    @property
    def vss(self) -> float:
        """What modeling the uncertainty (vs planning at the mean) is worth."""
        return self.expected_value_policy - self.stochastic

    def check_invariants(self, tol: float = 1e-6) -> None:
        if not (
            self.wait_and_see <= self.stochastic + tol
            and self.stochastic <= self.expected_value_policy + tol
        ):
            raise AssertionError(
                f"WS <= SP <= EEV violated: {self.wait_and_see}, "
                f"{self.stochastic}, {self.expected_value_policy}"
            )


def _stage_mean_prices(instance: SRRPInstance) -> np.ndarray:
    """Probability-weighted mean price per stage of the tree."""
    T = instance.horizon
    means = np.zeros(T)
    for node in instance.tree.nodes:
        means[node.depth] += node.abs_prob * node.price
    return means


def _wait_and_see(instance: SRRPInstance, backend: str) -> float:
    prices, probs = instance.tree.scenario_prices()
    total = 0.0
    for s in range(prices.shape[0]):
        det = DRRPInstance(
            demand=instance.demand,
            costs=instance.costs.with_compute(prices[s]),
            phi=instance.phi,
            initial_storage=instance.initial_storage,
            vm_name=instance.vm_name,
        )
        total += probs[s] * solve_drrp(det, backend=backend).total_cost
    return float(total)


def _expected_value_policy(instance: SRRPInstance, backend: str) -> float:
    """EEV: fix each stage's rental decision to the mean-price DRRP plan."""
    means = _stage_mean_prices(instance)
    ev_inst = DRRPInstance(
        demand=instance.demand,
        costs=instance.costs.with_compute(means),
        phi=instance.phi,
        initial_storage=instance.initial_storage,
        vm_name=instance.vm_name,
    )
    ev_plan = solve_drrp(ev_inst, backend=backend)

    from repro.solver import solve

    model, vars_ = build_srrp_model(instance)
    # Commit the EV plan's stage decisions at every vertex of that stage:
    # rental on/off and the amount generated (the EV planner cannot react
    # to prices it refuses to model).
    for node in instance.tree.nodes:
        t = node.depth
        model.add_constr(
            vars_["chi"][node.index] == float(ev_plan.chi[t]),
            name=f"ev_chi[{node.index}]",
        )
        model.add_constr(
            vars_["alpha"][node.index] == float(ev_plan.alpha[t]),
            name=f"ev_alpha[{node.index}]",
        )
    res = solve(model, backend=backend)
    if not res.status.has_solution:
        raise RuntimeError(f"EEV evaluation failed: {res.status.value}")
    return float(res.objective)


def evaluate_stochastic_value(
    instance: SRRPInstance, backend: str = "auto"
) -> StochasticValueReport:
    """Compute WS / SP / EEV (and thus EVPI, VSS) for one SRRP instance."""
    sp = solve_srrp(instance, backend=backend).expected_cost
    ws = _wait_and_see(instance, backend)
    eev = _expected_value_policy(instance, backend)
    report = StochasticValueReport(
        wait_and_see=ws, stochastic=sp, expected_value_policy=eev
    )
    report.check_invariants()
    return report
