"""High-level facade: one object that plans like the paper's ASP.

:class:`Planner` wires the substrates together for the common workflows so
downstream users don't have to touch model builders directly:

* ``plan_deterministic`` — DRRP over a horizon at on-demand prices (§III);
* ``plan_stochastic`` — SRRP over a bid-adjusted tree from a price history
  (§IV);
* ``evaluate_policies`` — rolling-horizon bake-off against a realized
  price path, returning overpay percentages vs the oracle (Figure 12(a)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.market.auction import BidStrategy, MeanBids
from repro.market.catalog import CostRates, VMClass, ec2_catalog
from repro.stats.empirical import EmpiricalDistribution
from .costs import on_demand_schedule
from .demand import DemandModel, NormalDemand
from .drrp import DRRPInstance, RentalPlan, solve_drrp
from .noplan import solve_noplan
from .rolling import (
    DeterministicPolicy,
    OnDemandPolicy,
    OraclePolicy,
    Policy,
    SimulationResult,
    StochasticPolicy,
    simulate_policy,
)
from .scenario import bid_adjusted_stage_distributions, build_tree
from .srrp import SRRPInstance, SRRPPlan, solve_srrp

__all__ = ["Planner", "PolicyComparison"]


@dataclass
class PolicyComparison:
    """Realized costs and overpay-vs-oracle for a set of policies."""

    results: dict[str, SimulationResult]
    ideal_cost: float

    def overpay_percentages(self) -> dict[str, float]:
        """(cost - ideal)/ideal × 100 for each policy — Fig. 12(a)'s y-axis."""
        return {
            name: 100.0 * (res.total_cost - self.ideal_cost) / self.ideal_cost
            for name, res in self.results.items()
        }


class Planner:
    """Paper-faithful planning entry point for one VM class."""

    def __init__(
        self,
        vm: VMClass | str = "m1.large",
        rates: CostRates | None = None,
        demand_model: DemandModel | None = None,
        backend: str = "auto",
    ) -> None:
        self.vm = ec2_catalog()[vm] if isinstance(vm, str) else vm
        self.rates = rates or CostRates()
        self.demand_model = demand_model or NormalDemand()
        self.backend = backend

    # -- deterministic -------------------------------------------------------
    def plan_deterministic(
        self,
        demand: np.ndarray | None = None,
        horizon: int = 24,
        seed: int | None = 0,
    ) -> tuple[RentalPlan, RentalPlan]:
        """Solve DRRP and the no-plan baseline; returns ``(drrp, noplan)``."""
        if demand is None:
            demand = self.demand_model.sample(horizon, seed)
        demand = np.asarray(demand, dtype=float)
        inst = DRRPInstance(
            demand=demand,
            costs=on_demand_schedule(self.vm, demand.shape[0], self.rates),
            phi=self.rates.input_output_ratio,
            vm_name=self.vm.name,
        )
        return solve_drrp(inst, backend=self.backend), solve_noplan(inst)

    # -- stochastic ----------------------------------------------------------
    def plan_stochastic(
        self,
        price_history: np.ndarray,
        bids: np.ndarray,
        demand: np.ndarray | None = None,
        current_price: float | None = None,
        max_branching: int = 3,
        seed: int | None = 0,
    ) -> SRRPPlan:
        """Solve one SRRP instance from a price history and a bid vector.

        ``bids[0]`` applies to the current slot (root), the rest to future
        stages; ``current_price`` defaults to the last history value.
        """
        bids = np.asarray(bids, dtype=float)
        horizon = bids.shape[0]
        if demand is None:
            demand = self.demand_model.sample(horizon, seed)
        demand = np.asarray(demand, dtype=float)
        base = EmpiricalDistribution(price_history)
        spot_now = float(price_history[-1]) if current_price is None else current_price
        from repro.market.auction import effective_hourly_price

        root_price = effective_hourly_price(float(bids[0]), spot_now, self.vm.on_demand_price)
        stage_dists = bid_adjusted_stage_distributions(
            base, bids[1:], self.vm.on_demand_price, max_branching
        )
        tree = build_tree(root_price, stage_dists)
        inst = SRRPInstance(
            demand=demand,
            costs=on_demand_schedule(self.vm, horizon, self.rates),
            tree=tree,
            phi=self.rates.input_output_ratio,
            vm_name=self.vm.name,
        )
        return solve_srrp(inst, backend=self.backend)

    # -- evaluation ----------------------------------------------------------
    def evaluate_policies(
        self,
        realized_spot: np.ndarray,
        demand: np.ndarray,
        price_history: np.ndarray,
        policies: dict[str, Policy] | None = None,
        bid_strategy: BidStrategy | None = None,
        lookahead: int = 6,
    ) -> PolicyComparison:
        """Run the Fig. 12(a) bake-off (or a caller-supplied policy set)."""
        realized_spot = np.asarray(realized_spot, dtype=float)
        demand = np.asarray(demand, dtype=float)
        base = EmpiricalDistribution(price_history)
        if policies is None:
            strategy = bid_strategy or MeanBids()
            policies = {
                "on-demand": OnDemandPolicy(lookahead=lookahead, backend=self.backend),
                f"det-{strategy.name}": DeterministicPolicy(
                    strategy, lookahead=lookahead, backend=self.backend
                ),
                f"sto-{strategy.name}": StochasticPolicy(
                    strategy, lookahead=lookahead, backend=self.backend
                ),
            }
        history = np.asarray(price_history, dtype=float)
        oracle = OraclePolicy(realized_spot, backend=self.backend)
        ideal = simulate_policy(
            oracle, realized_spot, demand, self.vm, self.rates, base,
            price_history=history,
        )
        results = {
            name: simulate_policy(
                pol, realized_spot, demand, self.vm, self.rates, base,
                price_history=history,
            )
            for name, pol in policies.items()
        }
        results["oracle"] = ideal
        return PolicyComparison(results=results, ideal_cost=ideal.total_cost)
