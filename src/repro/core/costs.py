"""Cost schedules: the time-indexed parameters of DRRP/SRRP (Table I).

A :class:`CostSchedule` carries, for one VM class over a horizon of ``T``
slots, the paper's five cost parameters:

* ``compute[t]`` — instance rental cost Cp(i, t) ($/instance-slot);
* ``storage[t]`` — data storage cost Cs(t) ($/GB-slot);
* ``io[t]`` — data I/O cost Cio(t) ($/GB-slot);
* ``transfer_in[t]`` / ``transfer_out[t]`` — network cost C±f(t) ($/GB).

Builders cover the three ways the paper instantiates them: fixed on-demand
prices (§III), realized spot prices (the oracle), and bid-dependent prices
(what a planner believes it will pay).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.market.catalog import CostRates, VMClass

__all__ = ["CostSchedule", "on_demand_schedule", "spot_schedule"]


@dataclass(frozen=True)
class CostSchedule:
    """Per-slot cost parameters for one VM class (arrays of length T)."""

    compute: np.ndarray
    storage: np.ndarray
    io: np.ndarray
    transfer_in: np.ndarray
    transfer_out: np.ndarray

    def __post_init__(self) -> None:
        arrays = {
            "compute": np.asarray(self.compute, dtype=float),
            "storage": np.asarray(self.storage, dtype=float),
            "io": np.asarray(self.io, dtype=float),
            "transfer_in": np.asarray(self.transfer_in, dtype=float),
            "transfer_out": np.asarray(self.transfer_out, dtype=float),
        }
        T = arrays["compute"].shape[0]
        for name, arr in arrays.items():
            if arr.shape != (T,):
                raise ValueError(f"{name} must be a 1-D array of length {T}")
            if np.any(arr < 0):
                raise ValueError(f"{name} contains negative costs")
            object.__setattr__(self, name, arr)

    @property
    def horizon(self) -> int:
        return self.compute.shape[0]

    @property
    def holding(self) -> np.ndarray:
        """Per-GB-slot inventory cost Cs(t) + Cio(t) — the coefficient of β."""
        return self.storage + self.io

    def with_compute(self, compute: np.ndarray) -> "CostSchedule":
        """Copy with the compute-price series replaced (bid/realized prices)."""
        compute = np.asarray(compute, dtype=float)
        if compute.shape != (self.horizon,):
            raise ValueError("replacement compute series has the wrong length")
        return replace(self, compute=compute)

    def slice(self, start: int, stop: int) -> "CostSchedule":
        """Sub-horizon view [start, stop)."""
        if not 0 <= start < stop <= self.horizon:
            raise ValueError("bad slice bounds")
        return CostSchedule(
            compute=self.compute[start:stop],
            storage=self.storage[start:stop],
            io=self.io[start:stop],
            transfer_in=self.transfer_in[start:stop],
            transfer_out=self.transfer_out[start:stop],
        )


def on_demand_schedule(vm: VMClass, horizon: int, rates: CostRates | None = None) -> CostSchedule:
    """Deterministic schedule at fixed on-demand prices (paper §III / §V-A)."""
    rates = rates or CostRates()
    T = int(horizon)
    if T < 1:
        raise ValueError("horizon must be >= 1")
    return CostSchedule(
        compute=np.full(T, vm.on_demand_price),
        storage=np.full(T, rates.storage_per_gb_hour),
        io=np.full(T, rates.io_per_gb),
        transfer_in=np.full(T, rates.transfer_in_per_gb),
        transfer_out=np.full(T, rates.transfer_out_per_gb),
    )


def spot_schedule(
    vm: VMClass,
    spot_prices: np.ndarray,
    rates: CostRates | None = None,
) -> CostSchedule:
    """Schedule whose compute series is a given spot-price path.

    Feeding *realized* prices builds the oracle's input; feeding *bid* or
    *forecast* prices builds what deterministic planning believes.
    """
    spot_prices = np.asarray(spot_prices, dtype=float)
    base = on_demand_schedule(vm, spot_prices.shape[0], rates)
    return base.with_compute(spot_prices)
