"""Multistage scenario trees and bid-dependent dynamic sampling (§IV-C/D).

A scenario tree G = (V, E) represents the evolution of the uncertain spot
price over the planning horizon: the root is the current state of the world
(stage 0, price known), and each vertex at depth ``t`` is a distinguishable
price state for slot ``t``.  Every leaf-root path is a *scenario*; interior
vertices carry the non-anticipativity structure for free, because SRRP's
recourse variables are indexed by vertex (decisions at a vertex are shared
by every scenario through it).

Stage distributions come from the paper's bid-dependent dynamic sampling:
take the *base* empirical distribution of historical prices, keep the mass
at or below the bid, and collapse the rest onto the on-demand price λ —
eq. (10)'s out-of-bid event.  Supports are then coarsened to a branching
factor so the tree stays tractable (the paper solves a 6 h SRRP horizon for
the same reason).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.stats.empirical import EmpiricalDistribution

__all__ = ["ScenarioNode", "ScenarioTree", "build_tree", "bid_adjusted_stage_distributions"]


@dataclass
class ScenarioNode:
    """One vertex of the tree.

    ``price`` is the compute price Cp in force at this vertex's slot;
    ``cond_prob`` the branch probability from the parent; ``abs_prob`` the
    product along the root path (p_v in eq. (13)).
    """

    index: int
    parent: int          # -1 for the root
    depth: int           # slot index τ(v)
    price: float
    cond_prob: float
    abs_prob: float
    children: list[int] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass
class ScenarioTree:
    """A perfectly balanced-depth scenario tree (all leaves at depth T-1)."""

    nodes: list[ScenarioNode]
    horizon: int

    @property
    def root(self) -> ScenarioNode:
        return self.nodes[0]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def leaves(self) -> list[ScenarioNode]:
        return [n for n in self.nodes if n.depth == self.horizon - 1]

    @property
    def num_scenarios(self) -> int:
        return len(self.leaves())

    def path(self, node_index: int) -> list[ScenarioNode]:
        """Root-to-node vertex list P(v)."""
        path = []
        idx = node_index
        while idx >= 0:
            node = self.nodes[idx]
            path.append(node)
            idx = node.parent
        return list(reversed(path))

    def scenario_prices(self) -> tuple[np.ndarray, np.ndarray]:
        """(S, T) price matrix and length-S probability vector, one row per
        scenario — the joint realizations the leaves encode."""
        leaves = self.leaves()
        S = len(leaves)
        prices = np.zeros((S, self.horizon))
        probs = np.zeros(S)
        for s, leaf in enumerate(leaves):
            for node in self.path(leaf.index):
                prices[s, node.depth] = node.price
            probs[s] = leaf.abs_prob
        return prices, probs

    def stage_probabilities_sum_to_one(self, tol: float = 1e-9) -> bool:
        """Invariant of §IV-D: Σ_{τ(v)=t} p_v = 1 for every stage t."""
        sums = np.zeros(self.horizon)
        for n in self.nodes:
            sums[n.depth] += n.abs_prob
        return bool(np.all(np.abs(sums - 1.0) <= tol))

    def validate(self) -> None:
        """Structural sanity checks (used by tests and at build time)."""
        if not self.nodes or self.nodes[0].parent != -1:
            raise ValueError("tree must start with a root of parent -1")
        for n in self.nodes[1:]:
            p = self.nodes[n.parent]
            if n.depth != p.depth + 1:
                raise ValueError(f"node {n.index} depth inconsistent with parent")
            if n.index not in p.children:
                raise ValueError(f"node {n.index} missing from parent's children")
        if not self.stage_probabilities_sum_to_one():
            raise ValueError("stage probabilities do not sum to one")


def build_tree(
    root_price: float,
    stage_distributions: list[tuple[np.ndarray, np.ndarray]],
    horizon: int | None = None,
) -> ScenarioTree:
    """Build a tree: known root price, then one (values, probs) pair per
    later stage.  Stage distributions are assumed independent across stages
    (the empirical base distribution is stationary over the window, per the
    paper's stationarity analysis).

    ``horizon`` defaults to ``1 + len(stage_distributions)``.
    """
    T = horizon if horizon is not None else 1 + len(stage_distributions)
    if T != 1 + len(stage_distributions):
        raise ValueError("horizon must equal 1 + number of stage distributions")
    nodes = [ScenarioNode(index=0, parent=-1, depth=0, price=float(root_price), cond_prob=1.0, abs_prob=1.0)]
    frontier = [0]
    for depth in range(1, T):
        values, probs = stage_distributions[depth - 1]
        values = np.asarray(values, dtype=float)
        probs = np.asarray(probs, dtype=float)
        if values.size == 0 or values.shape != probs.shape:
            raise ValueError(f"bad stage distribution at depth {depth}")
        if abs(probs.sum() - 1.0) > 1e-9:
            raise ValueError(f"stage {depth} probabilities sum to {probs.sum()}")
        new_frontier = []
        for parent_idx in frontier:
            parent = nodes[parent_idx]
            for v, p in zip(values, probs):
                node = ScenarioNode(
                    index=len(nodes), parent=parent_idx, depth=depth,
                    price=float(v), cond_prob=float(p), abs_prob=parent.abs_prob * float(p),
                )
                nodes.append(node)
                parent.children.append(node.index)
                new_frontier.append(node.index)
        frontier = new_frontier
    tree = ScenarioTree(nodes=nodes, horizon=T)
    tree.validate()
    return tree


def bid_adjusted_stage_distributions(
    base: EmpiricalDistribution,
    bids: np.ndarray,
    on_demand_price: float,
    max_branching: int = 3,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-stage (values, probs) after bid truncation and coarsening.

    For each future slot ``t`` (bids[0] is the *second* tree stage — the
    root price is known), apply eq. (10): keep base mass at values ≤ bid,
    move the rest to λ, then coarsen the support to ``max_branching`` states
    so the tree stays solvable.
    """
    bids = np.asarray(bids, dtype=float)
    out = []
    for bid in bids:
        d = base.truncate_at_bid(float(bid), on_demand_price)
        d = d.coarsen(max_branching)
        out.append((d.values, d.probabilities))
    return out
