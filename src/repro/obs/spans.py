"""Hierarchical spans reconstructed from the flat solve-event stream.

The solver stack reports progress as a flat sequence of
:class:`~repro.solver.telemetry.SolveEvent` records.  That answers *what
happened* but not *where the time went*: a ``phase_end`` for
``simplex_phase2`` says nothing about which B&B node, which Benders
iteration, or which fuzz case it served.  :class:`Tracer` is a telemetry
listener that folds the stream back into a parent/child **span tree**:

* ``solve_start``/``solve_end`` and ``phase_start``/``phase_end`` bracket
  strictly nested spans (a stack);
* ``node_open``/``node_close``/``node_prune`` are matched **by node id**,
  not stack order — B&B explores nodes best-first, so open intervals
  interleave freely;
* ``benders_iteration`` and ``fuzz_case`` events mark the *end* of one
  unit of work, so the tracer slices them into back-to-back spans that
  tile their parent;
* everything else (``incumbent``, ``backend_degraded``,
  ``deadline_exceeded``, ...) becomes an instant **marker** attached to
  the tree, and increments work counters on the enclosing span.

A stream truncated by a deadline (a ``phase_start`` whose ``phase_end``
never arrives) is handled by :meth:`Tracer.finish`, which force-closes
open spans at the last observed timestamp and flags them ``truncated``.

Spans carry a ``worker`` lane (0 = the parent process) so event streams
forwarded from :func:`repro.parallel.parallel_map` workers merge into one
tree; see :mod:`repro.parallel.pool`.

Experiment code that wants its own top-level structure uses the
:func:`span` context manager, which emits the same ``phase_start`` /
``phase_end`` pair through the hub and therefore nests naturally around
any solver activity it encloses.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only: keeps this module stdlib-importable
    from repro.solver.telemetry import SolveEvent, Telemetry

__all__ = ["Span", "Marker", "Tracer", "span"]


@dataclass
class Marker:
    """An instant (zero-duration) annotation on the trace timeline."""

    kind: str
    t: float
    data: dict = field(default_factory=dict)
    worker: int = 0


@dataclass
class Span:
    """One node of the reconstructed span tree.

    ``start``/``end`` are seconds on the owning hub's clock; ``end`` is
    ``None`` while the span is open (only ever observable mid-stream).
    ``counters`` aggregates work attributed to this span *itself* (nodes
    explored while it was innermost, cut rounds, pivots, ...).
    """

    name: str
    category: str
    start: float
    end: float | None = None
    span_id: int = 0
    parent_id: int | None = None
    worker: int = 0
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    truncated: bool = False

    @property
    def duration(self) -> float:
        """Wall-clock extent in seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def self_time(self) -> float:
        """Duration minus the duration of direct *exclusive* children.

        ``node`` children are excluded from the subtraction: a B&B node
        span covers its whole queue residency (heap push to pop), so node
        intervals overlap each other and their parent freely — subtracting
        them would zero out the parent's genuine loop time.
        """
        owned = sum(c.duration for c in self.children if c.category != "node")
        return max(0.0, self.duration - owned)

    def count(self, key: str, amount: float = 1.0) -> None:
        self.counters[key] = self.counters.get(key, 0) + amount

    def walk(self, depth: int = 0):
        """Yield ``(span, depth)`` over the subtree, depth-first preorder."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "Span | None":
        """First span in the subtree whose name equals ``name``."""
        for s, _ in self.walk():
            if s.name == name:
                return s
        return None

    def total_counter(self, key: str) -> float:
        """Sum of one counter over the whole subtree."""
        return sum(s.counters.get(key, 0) for s, _ in self.walk())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e3:.2f}ms" if self.end is not None else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


#: Event kinds that mark the completion of one sliced unit of work.
_SLICED = {"benders_iteration": "benders_iter", "fuzz_case": "fuzz_case"}

#: Instant kinds that become markers (plus counters on the enclosing span).
_MARKERS = {
    "incumbent",
    "cut_round",
    "backend_degraded",
    "warm_start_rejected",
    "deadline_exceeded",
    "fuzz_disagreement",
    "fuzz_summary",
}


class Tracer:
    """Telemetry listener reconstructing the span tree from solve events.

    Use as a listener (``solve(model, listener=tracer)``) or feed recorded
    events through :meth:`replay`; call :meth:`finish` (idempotent) and
    read :attr:`roots` / :attr:`markers`.
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self.markers: list[Marker] = []
        self._stack: list[Span] = []
        self._open_nodes: dict[tuple[int, int], Span] = {}
        self._ids = itertools.count(1)
        self._last_t = 0.0
        # Per-parent timestamp of the previous sliced event, so consecutive
        # benders_iteration / fuzz_case events tile the parent interval.
        self._slice_cursor: dict[int | None, float] = {}
        # Per-(enclosing span, worker) clock offset mapping in-worker
        # ``worker_t`` timestamps onto the parent clock; see _worker_time.
        self._worker_offset: dict[tuple[int | None, int], float] = {}
        self._finished = False

    # -- listener protocol -------------------------------------------------

    def on_event(self, event: SolveEvent) -> None:
        data = dict(event.data)
        worker = int(data.pop("worker", 0))
        t = event.t
        self._last_t = max(self._last_t, t)
        worker_t = data.pop("worker_t", None)
        if worker_t is not None:
            t = self._worker_time(worker, float(worker_t), t)
        kind = event.kind

        if kind == "solve_start":
            self._open(f"solve[{data.get('backend', '?')}]", "solve", t, data, worker)
        elif kind == "solve_end":
            self._close_category("solve", t, data)
        elif kind == "phase_start":
            name = str(data.pop("phase", "?"))
            self._open(name, "phase", t, data, worker)
        elif kind == "phase_end":
            name = str(data.pop("phase", "?"))
            self._close_phase(name, t, data)
        elif kind == "node_open":
            self._node_open(t, data, worker)
        elif kind == "node_close":
            self._node_close(t, data, worker, pruned=False)
        elif kind == "node_prune":
            self._node_close(t, data, worker, pruned=True)
        elif kind in _SLICED:
            self._slice(kind, t, data, worker)
        else:
            self.markers.append(Marker(kind=kind, t=t, data=data, worker=worker))
            self._mark_counters(kind, data)

    __call__ = on_event  # also usable as a plain-callable listener

    # -- stream replay / finalisation --------------------------------------

    def replay(self, events) -> "Tracer":
        """Feed a recorded event sequence (e.g. ``EventRecorder.events``)."""
        for ev in events:
            self.on_event(ev)
        return self

    def finish(self) -> list[Span]:
        """Force-close any open spans at the last timestamp; return roots.

        A deadline can expire between ``phase_start`` and ``phase_end`` —
        the enclosing solver layer unwinds without emitting the closing
        event.  Those spans are closed here and flagged ``truncated`` so
        reports can render them honestly.
        """
        if not self._finished:
            for span in reversed(self._stack):
                span.end = self._last_t
                span.truncated = True
            self._stack.clear()
            for span in self._open_nodes.values():
                span.end = self._last_t
                span.truncated = True
            self._open_nodes.clear()
            self._finished = True
        return self.roots

    # -- internals ---------------------------------------------------------

    def _worker_time(self, worker: int, worker_t: float, t: float) -> float:
        """Map a forwarded in-worker timestamp onto the parent clock.

        ``parallel_map`` re-emits captured worker events only after the
        pool completes, so their parent-hub timestamps all collapse at
        the fan-out's end — every worker span would render as a zero-width
        sliver on one lane.  ``worker_t`` is monotone on a per-process
        epoch, so anchoring each worker's first event at the enclosing
        span's start recovers real in-worker start times and durations on
        that worker's own lane.  The anchor is keyed per enclosing span:
        each fan-out phase spawns a fresh pool, so worker ids (and their
        epochs) only mean something within one phase.  Spans owned by
        this same worker are skipped when picking the anchor — otherwise
        a worker's ``phase_end`` would re-anchor on the span being closed
        and collapse it to zero width.
        """
        anchor = next(
            (s for s in reversed(self._stack) if s.worker != worker), None
        )
        key = (anchor.span_id if anchor is not None else None, worker)
        offset = self._worker_offset.get(key)
        if offset is None:
            base = anchor.start if anchor is not None else t
            offset = base - worker_t
            self._worker_offset[key] = offset
        # Never run past the re-emission time: the fan-out demonstrably
        # finished by then, whatever the two clocks disagree about.
        return min(worker_t + offset, t)

    def _attach(self, span: Span) -> None:
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            parent.children.append(span)
        else:
            self.roots.append(span)

    def _open(self, name: str, category: str, t: float, data: dict, worker: int) -> Span:
        span = Span(
            name=name, category=category, start=t,
            span_id=next(self._ids), worker=worker, attrs=data,
        )
        self._attach(span)
        self._stack.append(span)
        self._slice_cursor[span.span_id] = t
        return span

    def _close_category(self, category: str, t: float, data: dict) -> None:
        for i in range(len(self._stack) - 1, -1, -1):
            if self._stack[i].category == category:
                # Unbalanced inner spans (deadline unwinding) close with us.
                for inner in self._stack[i + 1:]:
                    inner.end = t
                    inner.truncated = True
                span = self._stack[i]
                span.end = t
                span.attrs.update(data)
                del self._stack[i:]
                self._close_queued_nodes(span, t)
                return
        # end without a start: record an instant span at t
        s = Span(name=category, category=category, start=t, end=t,
                 span_id=next(self._ids), attrs=data)
        self._attach(s)

    def _close_phase(self, name: str, t: float, data: dict) -> None:
        for i in range(len(self._stack) - 1, -1, -1):
            if self._stack[i].category == "phase" and self._stack[i].name == name:
                for inner in self._stack[i + 1:]:
                    inner.end = t
                    inner.truncated = True
                span = self._stack[i]
                span.end = t
                span.attrs.update(data)
                del self._stack[i:]
                self._close_queued_nodes(span, t)
                return
        s = Span(name=name, category="phase", start=t, end=t,
                 span_id=next(self._ids), attrs=data)
        self._attach(s)

    def _close_queued_nodes(self, owner: Span, t: float) -> None:
        """Close node spans still queued when their owning span ends.

        B&B can terminate with open nodes on the heap (bound domination
        prunes the remainder in one step); those were never explored, so
        they close with the solve and are flagged ``open_at_exit`` rather
        than left dangling for :meth:`finish` to call truncated.
        """
        for key in [k for k, s in self._open_nodes.items() if s.parent_id == owner.span_id]:
            node_span = self._open_nodes.pop(key)
            node_span.end = t
            node_span.attrs["open_at_exit"] = True

    def _node_open(self, t: float, data: dict, worker: int) -> None:
        node = int(data.get("node", -1))
        span = Span(
            name=f"node {node}", category="node", start=t,
            span_id=next(self._ids), worker=worker, attrs=data,
        )
        # Nodes attach to the innermost *stack* span (the solve or phase
        # that owns the B&B loop), never to another node: open intervals
        # interleave in heap order, not containment order.
        self._attach(span)
        if node >= 0:
            self._open_nodes[(worker, node)] = span
        if self._stack:
            self._stack[-1].count("nodes_opened")

    def _node_close(self, t: float, data: dict, worker: int, pruned: bool) -> None:
        node = int(data.get("node", -1))
        span = self._open_nodes.pop((worker, node), None)
        if span is None:
            # prune of a never-opened child bound, or a stray close: the
            # work still counts, but there is no interval to close.
            if self._stack:
                self._stack[-1].count("nodes_pruned" if pruned else "nodes_closed")
            return
        span.end = t
        span.attrs.update(data)
        if pruned:
            span.attrs["pruned"] = True
        if self._stack:
            self._stack[-1].count("nodes_pruned" if pruned else "nodes_closed")

    def _slice(self, kind: str, t: float, data: dict, worker: int) -> None:
        parent_id = self._stack[-1].span_id if self._stack else None
        start = self._slice_cursor.get(parent_id, self._stack[-1].start if self._stack else t)
        base = _SLICED[kind]
        index = data.get("iteration", data.get("index"))
        name = base if index is None else f"{base} {index}"
        span = Span(
            name=name, category=base, start=min(start, t), end=t,
            span_id=next(self._ids), worker=worker, attrs=data,
        )
        self._attach(span)
        self._slice_cursor[parent_id] = t
        if self._stack:
            self._stack[-1].count(f"{base}s")

    def _mark_counters(self, kind: str, data: dict) -> None:
        if not self._stack:
            return
        top = self._stack[-1]
        if kind == "incumbent":
            top.count("incumbents")
        elif kind == "cut_round":
            top.count("cut_rounds")
            top.count("cuts_added", float(data.get("added", 0)))
        elif kind == "backend_degraded":
            top.count("degradations")
        elif kind == "deadline_exceeded":
            top.truncated = True


@contextmanager
def span(telemetry: Telemetry | None, name: str, **attrs):
    """Bracket a block of experiment code as a span in the event stream.

    Emits the same ``phase_start``/``phase_end`` pair the solver phases
    use, so :class:`Tracer` nests any enclosed solver activity under it.
    ``telemetry`` may be ``None`` (the disabled path): the block then runs
    with zero bookkeeping.  Yields a dict merged into the closing event,
    for attaching counters from the body.
    """
    if telemetry is None:
        yield {}
        return
    with telemetry.phase(name, **attrs) as info:
        yield info
