"""Counters, gauges, histograms, and time series over solve events.

A :class:`MetricsRegistry` holds named instruments; the
:class:`MetricsAggregator` listener populates a registry live from the
telemetry stream (pivots, nodes explored, cut rounds, incumbent
trajectory, Benders bound trajectory), so any solve or fuzz run can end
with a one-call metrics table.

The **disabled path** is designed to cost nothing: the module-level
:data:`NULL_REGISTRY` hands out one shared no-op instrument for every
name, so code can write ``registry.counter("nodes").inc()`` unconditionally
and pay a single attribute call when metrics are off.  The registry used
by the solvers themselves is stricter still — backends emit events only
behind ``if telemetry:`` guards, so with no listener attached *zero*
events and *zero* instruments exist (see ``Telemetry.from_listener``
returning ``None``).
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # annotation-only: keeps this module stdlib-importable
    from repro.solver.telemetry import SolveEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "MetricsAggregator",
    "DEFAULT_DURATION_BUCKETS",
    "to_prometheus",
]

#: Upper bounds (seconds) for duration histograms; the last bucket is +inf.
DEFAULT_DURATION_BUCKETS = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, math.inf
)

#: Upper bounds (pivot counts) for the per-LP work histogram: warm restarts
#: land in the single-digit buckets, cold two-phase solves in the hundreds.
_PIVOT_BUCKETS = (0.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, math.inf)


@dataclass
class Counter:
    """Monotone accumulator."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """Last-write-wins point-in-time value."""

    value: float = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets, like Prometheus).

    ``buckets`` are upper bounds; an observation lands in the first bucket
    whose bound is >= the value.  The bound list is frozen at creation so
    two runs of the same workload produce comparable vectors.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets=DEFAULT_DURATION_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or sorted(bounds) != list(bounds):
            raise ValueError(f"histogram buckets must be sorted and non-empty: {buckets}")
        if bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.buckets = bounds
        self.counts = [0] * len(bounds)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        seen = 0
        for bound, n in zip(self.buckets, self.counts):
            seen += n
            if seen >= target:
                return bound
        return self.buckets[-1]

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
        }


@dataclass
class Series:
    """An append-only ``(t, value)`` trajectory (bounds over time, gaps)."""

    points: list[tuple[float, float]] = field(default_factory=list)

    def observe(self, t: float, value: float) -> None:
        self.points.append((float(t), float(value)))

    @property
    def last(self) -> float:
        return self.points[-1][1] if self.points else math.nan

    def snapshot(self) -> dict:
        return {
            "type": "series",
            "n": len(self.points),
            "first": self.points[0][1] if self.points else math.nan,
            "last": self.last,
            "points": [[t, v] for t, v in self.points],
        }


class _NullInstrument:
    """Shared do-nothing instrument for the disabled path."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, *args) -> None:
        pass


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instruments with create-on-first-use semantics.

    Thread-safe at the registry level: the planning service mutates
    instruments from solver worker threads while HTTP handler threads
    snapshot ``/metrics`` concurrently, so create-on-first-use and
    :meth:`snapshot` hold a lock — an unlocked check-then-set can hand
    two racing threads *different* instruments for the same name,
    silently dropping one thread's observations.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, factory, cls):
        with self._lock:
            inst = self._metrics.get(name)
            if inst is None:
                inst = factory()
                self._metrics[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {type(inst).__name__}, "
                    f"not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, buckets=DEFAULT_DURATION_BUCKETS) -> Histogram:
        return self._get(name, lambda: Histogram(buckets), Histogram)

    def series(self, name: str) -> Series:
        return self._get(name, Series, Series)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict:
        """JSON-friendly dump of every instrument, sorted by name."""
        with self._lock:
            return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def render_table(self) -> str:
        """Aligned text table for terminal reports."""
        rows = []
        for name in self.names():
            snap = self._metrics[name].snapshot()
            kind = snap["type"]
            if kind == "counter" or kind == "gauge":
                detail = _fmt(snap["value"])
            elif kind == "histogram":
                detail = (
                    f"n={snap['count']} mean={_fmt(snap['mean'])} "
                    f"min={_fmt(snap['min'])} max={_fmt(snap['max'])}"
                )
            else:  # series
                detail = f"n={snap['n']} first={_fmt(snap['first'])} last={_fmt(snap['last'])}"
            rows.append((name, kind, detail))
        if not rows:
            return "(no metrics)"
        w_name = max(len(r[0]) for r in rows)
        w_kind = max(len(r[1]) for r in rows)
        return "\n".join(f"{n.ljust(w_name)}  {k.ljust(w_kind)}  {d}" for n, k, d in rows)


class _NullRegistry(MetricsRegistry):
    """Registry whose instruments all alias one shared no-op object."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str):
        return _NULL

    def gauge(self, name: str):
        return _NULL

    def histogram(self, name: str, buckets=DEFAULT_DURATION_BUCKETS):
        return _NULL

    def series(self, name: str):
        return _NULL


#: The shared disabled registry: every instrument is the same no-op object.
NULL_REGISTRY = _NullRegistry()


def _fmt(v) -> str:
    if isinstance(v, float):
        if math.isnan(v):
            return "-"
        if v == int(v) and abs(v) < 1e15:
            return str(int(v))
        return f"{v:.6g}"
    return str(v)


# -- Prometheus text exposition (format 0.0.4) ------------------------------

_PROM_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, namespace: str) -> str:
    full = f"{namespace}_{name}" if namespace else name
    full = _PROM_BAD_CHARS.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _prom_value(v) -> str:
    v = float(v)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def to_prometheus(snapshot: dict, namespace: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text 0.0.4.

    Counters and gauges map directly; a :class:`Series` is exposed as a
    gauge of its last value.  Histogram buckets are rendered with the
    **cumulative** counts the exposition format requires (the in-memory
    representation keeps per-bucket counts), plus ``_sum``/``_count``.
    Nested/unknown snapshot entries (e.g. the service's cache summary)
    are skipped — the JSON endpoint carries those.
    """
    lines: list[str] = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        if not isinstance(snap, dict) or "type" not in snap:
            continue
        metric = _prom_name(name, namespace)
        kind = snap["type"]
        if kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {_prom_value(snap['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(snap['value'])}")
        elif kind == "series":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prom_value(snap['last'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(snap["buckets"], snap["counts"]):
                cumulative += int(count)
                lines.append(
                    f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
                )
            lines.append(f"{metric}_sum {_prom_value(snap['sum'])}")
            lines.append(f"{metric}_count {int(snap['count'])}")
    return "\n".join(lines) + "\n"


class MetricsAggregator:
    """Telemetry listener that folds solve events into a registry.

    Derived metrics:

    * ``simplex_pivots`` / ``pivots_per_sec`` from simplex ``phase_end``;
    * ``phase_seconds.<name>`` counters and a ``phase_duration_s``
      histogram across all phases;
    * ``nodes_explored`` / ``nodes_opened`` / ``nodes_pruned``;
    * ``cut_rounds`` / ``cuts_added``;
    * ``incumbent_objective`` and ``incumbent_gap`` series over time;
    * ``benders_lower`` / ``benders_upper`` bound trajectories;
    * ``solves`` / ``solve_seconds`` (paired start/end);
    * fuzz campaign tallies.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._solve_starts: list[float] = []

    def on_event(self, event: SolveEvent) -> None:
        reg = self.registry
        kind = event.kind
        data = event.data
        if kind == "phase_end":
            name = data.get("phase", "?")
            duration = float(data.get("duration", 0.0))
            reg.counter(f"phase_seconds.{name}").inc(duration)
            reg.histogram("phase_duration_s").observe(duration)
            pivots = data.get("pivots")
            if pivots is not None:
                reg.counter("simplex_pivots").inc(float(pivots))
                if duration > 0:
                    reg.gauge("pivots_per_sec").set(float(pivots) / duration)
        elif kind == "node_open":
            reg.counter("nodes_opened").inc()
        elif kind == "node_close":
            reg.counter("nodes_explored").inc()
        elif kind == "node_prune":
            reg.counter("nodes_pruned").inc()
        elif kind == "lp_warm" or kind == "lp_cold":
            reg.counter("lp_warm_solves" if kind == "lp_warm" else "lp_cold_solves").inc()
            pivots = data.get("pivots")
            if pivots is not None:
                reg.histogram(
                    "lp_pivots_per_solve", buckets=_PIVOT_BUCKETS
                ).observe(float(pivots))
            duration = data.get("duration")
            if duration is not None:
                reg.histogram("lp_solve_s").observe(float(duration))
            warm = reg.counter("lp_warm_solves").value
            cold = reg.counter("lp_cold_solves").value
            reg.gauge("lp_warm_hit_rate").set(warm / (warm + cold))
        elif kind == "benders_parallel":
            reg.counter("benders_parallel_rounds").inc()
            reg.counter("benders_warm_hits").inc(float(data.get("warm_hits", 0)))
            workers = data.get("workers")
            if workers is not None:
                reg.gauge("benders_workers").set(float(workers))
        elif kind == "incumbent":
            obj = data.get("objective")
            if obj is not None:
                reg.series("incumbent_objective").observe(event.t, float(obj))
            gap = data.get("gap")
            if gap is not None and math.isfinite(float(gap)):
                reg.series("incumbent_gap").observe(event.t, float(gap))
        elif kind == "cut_round":
            reg.counter("cut_rounds").inc()
            reg.counter("cuts_added").inc(float(data.get("added", 0)))
        elif kind == "benders_iteration":
            reg.counter("benders_iterations").inc()
            if "lower" in data:
                reg.series("benders_lower").observe(event.t, float(data["lower"]))
            if "upper" in data and math.isfinite(float(data["upper"])):
                reg.series("benders_upper").observe(event.t, float(data["upper"]))
        elif kind == "solve_start":
            reg.counter("solves").inc()
            self._solve_starts.append(event.t)
        elif kind == "solve_end":
            if self._solve_starts:
                start = self._solve_starts.pop()
                reg.histogram("solve_seconds").observe(event.t - start)
        elif kind == "backend_degraded":
            reg.counter("backend_degradations").inc()
        elif kind == "deadline_exceeded":
            reg.counter("deadline_hits").inc()
        elif kind == "fuzz_case":
            reg.counter("fuzz_cases").inc()
            if data.get("certified"):
                reg.counter("fuzz_certified").inc()
        elif kind == "fuzz_disagreement":
            reg.counter("fuzz_disagreements").inc()
