"""Observability over the solve pipeline: spans, metrics, traces, manifests.

Layered on the :mod:`repro.solver.telemetry` event hub — no solver
changes required to adopt it:

>>> from repro.obs import Tracer
>>> tracer = Tracer()
>>> result = solve(model, listener=tracer)            # doctest: +SKIP
>>> roots = tracer.finish()
>>> print(render_report(roots))                       # doctest: +SKIP

* :mod:`repro.obs.spans` — hierarchical span reconstruction
  (:class:`Tracer`) and the explicit :func:`span` context manager;
* :mod:`repro.obs.metrics` — counters/gauges/histograms/series with a
  zero-cost disabled path (:data:`NULL_REGISTRY`);
* :mod:`repro.obs.exporters` — JSONL event logs, Chrome
  trace-event / Perfetto span dumps with a lossless loader, and the
  terminal report;
* :mod:`repro.obs.manifest` — per-run provenance manifests with result
  digests, for replaying and diffing figure/fuzz runs.

See ``docs/observability.md`` for the event-to-span mapping and file
formats.
"""

from .exporters import (
    load_chrome_trace,
    read_events_jsonl,
    render_report,
    render_span_tree,
    to_chrome_trace,
    top_self_time,
    write_chrome_trace,
    write_events_jsonl,
)
from .manifest import (
    RunManifest,
    backend_chain,
    canonical_json,
    diff_manifests,
    event_counts,
    package_versions,
    result_digest,
)
from .metrics import (
    DEFAULT_DURATION_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsAggregator,
    MetricsRegistry,
    Series,
)
from .spans import Marker, Span, Tracer, span

__all__ = [
    # spans
    "Span",
    "Marker",
    "Tracer",
    "span",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "MetricsAggregator",
    "NULL_REGISTRY",
    "DEFAULT_DURATION_BUCKETS",
    # exporters
    "write_events_jsonl",
    "read_events_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "render_span_tree",
    "render_report",
    "top_self_time",
    # manifests
    "RunManifest",
    "result_digest",
    "canonical_json",
    "package_versions",
    "backend_chain",
    "event_counts",
    "diff_manifests",
]
