"""Observability over the solve pipeline: spans, metrics, traces, manifests.

Layered on the :mod:`repro.solver.telemetry` event hub — no solver
changes required to adopt it:

>>> from repro.obs import Tracer
>>> tracer = Tracer()
>>> result = solve(model, listener=tracer)            # doctest: +SKIP
>>> roots = tracer.finish()
>>> print(render_report(roots))                       # doctest: +SKIP

* :mod:`repro.obs.spans` — hierarchical span reconstruction
  (:class:`Tracer`) and the explicit :func:`span` context manager;
* :mod:`repro.obs.metrics` — counters/gauges/histograms/series with a
  zero-cost disabled path (:data:`NULL_REGISTRY`);
* :mod:`repro.obs.exporters` — JSONL event logs, Chrome
  trace-event / Perfetto span dumps with a lossless loader, and the
  terminal report;
* :mod:`repro.obs.manifest` — per-run provenance manifests with result
  digests, for replaying and diffing figure/fuzz runs;
* :mod:`repro.obs.propagate` — W3C-``traceparent``-style
  :class:`TraceContext` carried across ``parallel_map`` forks and
  service HTTP hops, per-process event files, and the cross-process
  trace merge behind ``repro trace``;
* :mod:`repro.obs.prof` — the deterministic phase profiler
  (:func:`profile_events`) and speedscope export behind ``repro profile``.

See ``docs/observability.md`` for the event-to-span mapping and file
formats.
"""

from .exporters import (
    load_chrome_trace,
    read_events_jsonl,
    render_report,
    render_span_tree,
    to_chrome_trace,
    top_self_time,
    write_chrome_trace,
    write_events_jsonl,
)
from .manifest import (
    RunManifest,
    backend_chain,
    canonical_json,
    diff_manifests,
    event_counts,
    package_versions,
    result_digest,
)
from .metrics import (
    DEFAULT_DURATION_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsAggregator,
    MetricsRegistry,
    Series,
    to_prometheus,
)
from .prof import (
    PhaseProfile,
    parent_clock_spans,
    profile_events,
    profile_spans,
    to_speedscope,
    write_speedscope,
)
from .propagate import (
    TRACEPARENT_HEADER,
    TraceContext,
    activate,
    collect_event_files,
    current_trace,
    ensure_trace,
    merge_process_traces,
    parse_traceparent,
    read_process_events,
    write_merged_trace,
    write_process_events,
)
from .spans import Marker, Span, Tracer, span

__all__ = [
    # spans
    "Span",
    "Marker",
    "Tracer",
    "span",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "MetricsAggregator",
    "NULL_REGISTRY",
    "DEFAULT_DURATION_BUCKETS",
    "to_prometheus",
    # propagation
    "TRACEPARENT_HEADER",
    "TraceContext",
    "parse_traceparent",
    "current_trace",
    "activate",
    "ensure_trace",
    "write_process_events",
    "read_process_events",
    "collect_event_files",
    "merge_process_traces",
    "write_merged_trace",
    # profiler
    "PhaseProfile",
    "profile_events",
    "profile_spans",
    "parent_clock_spans",
    "to_speedscope",
    "write_speedscope",
    # exporters
    "write_events_jsonl",
    "read_events_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "render_span_tree",
    "render_report",
    "top_self_time",
    # manifests
    "RunManifest",
    "result_digest",
    "canonical_json",
    "package_versions",
    "backend_chain",
    "event_counts",
    "diff_manifests",
]
