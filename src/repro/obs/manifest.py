"""Run manifests: enough provenance to replay and diff any run.

Every instrumented entry point — ``repro run``, ``repro plan``,
``repro fuzz``, the experiment harness — can write a ``manifest.json``
recording *what produced this result*: the seed and configuration, the
package versions, the backend chain the solve actually took (including
``backend_degraded`` hops), the deadline budget, per-kind event counts,
and a **result digest** — a SHA-256 over a canonical JSON form of the
result with floats rounded to 12 significant digits, so bit-identical
reruns and cross-platform reruns with sub-ulp noise both map to the same
digest.

``diff_manifests`` explains how two runs differ (changed seed?  different
backend chain?  result drift?), which is the provenance question the
paper's figure pipeline needs answered before any perf comparison is
meaningful.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

# Canonical encoding and digests moved to repro.serialize (so cache keys
# don't depend on the obs package); re-exported here for compatibility.
from repro.serialize import canonical_json, jsonable, result_digest

__all__ = [
    "MANIFEST_VERSION",
    "RunManifest",
    "canonical_json",
    "result_digest",
    "package_versions",
    "backend_chain",
    "event_counts",
    "diff_manifests",
]

MANIFEST_VERSION = 1

#: Fields that legitimately differ between a run and its replay.
VOLATILE_FIELDS = frozenset({"created", "elapsed", "versions", "host", "events"})

#: Keys inside ``extra`` that vary between a run and its faithful replay
#: (trace ids are random per run, like timestamps).
VOLATILE_EXTRA_KEYS = frozenset({"trace_id"})


def package_versions() -> dict:
    """Versions of the packages that can change numeric results."""
    versions = {"python": platform.python_version()}
    for name in ("numpy", "scipy"):
        mod = sys.modules.get(name)
        if mod is None:
            try:
                mod = __import__(name)
            except ImportError:
                versions[name] = None
                continue
        versions[name] = getattr(mod, "__version__", "unknown")
    try:
        from repro import __version__ as repro_version
    except ImportError:  # pragma: no cover - package always importable here
        repro_version = "unknown"
    versions["repro"] = repro_version
    return versions


def backend_chain(events) -> list[str]:
    """The backend sequence a run actually took, degradations included.

    Reads ``solve_start`` (requested backend) and ``backend_degraded``
    (from/to hops) events; consecutive duplicates are collapsed so a
    thousand-solve sweep over one backend reports a one-element chain.
    """
    chain: list[str] = []

    def push(name) -> None:
        if name and (not chain or chain[-1] != name):
            chain.append(str(name))

    for ev in events:
        if ev.kind == "solve_start":
            push(ev.data.get("backend"))
        elif ev.kind == "backend_degraded":
            push(ev.data.get("from_backend"))
            push(ev.data.get("to_backend"))
    return chain


def event_counts(events) -> dict[str, int]:
    counts: dict[str, int] = {}
    for ev in events:
        counts[ev.kind] = counts.get(ev.kind, 0) + 1
    return dict(sorted(counts.items()))


@dataclass
class RunManifest:
    """Provenance record for one run (see module docstring)."""

    kind: str                                  # "experiment" | "fuzz" | "plan" | ...
    name: str                                  # e.g. "fig10", "smoke", "m1.large/24"
    seed: int | None = None
    config: dict = field(default_factory=dict)
    versions: dict = field(default_factory=package_versions)
    backends: list[str] = field(default_factory=list)
    deadline_budget: float | None = None
    events: dict = field(default_factory=dict)  # per-kind event counts
    result_digest: str = ""
    elapsed: float | None = None
    created: float = 0.0                        # time.time(); 0 = unset
    host: str = ""
    extra: dict = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    def __post_init__(self) -> None:
        if not self.created:
            self.created = time.time()
        if not self.host:
            self.host = platform.node()

    @classmethod
    def from_run(
        cls,
        kind: str,
        name: str,
        *,
        result,
        seed: int | None = None,
        config: dict | None = None,
        recorded_events=(),
        deadline_budget: float | None = None,
        elapsed: float | None = None,
        extra: dict | None = None,
    ) -> "RunManifest":
        """Build a manifest from a finished run's result + event stream."""
        recorded_events = list(recorded_events)
        return cls(
            kind=kind,
            name=name,
            seed=seed,
            config=jsonable(config or {}),
            backends=backend_chain(recorded_events),
            deadline_budget=deadline_budget,
            events=event_counts(recorded_events),
            result_digest=result_digest(result),
            elapsed=elapsed,
            extra=jsonable(extra or {}),
        )

    def to_dict(self) -> dict:
        return jsonable(asdict(self))

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, allow_nan=False) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunManifest":
        data = json.loads(Path(path).read_text())
        data.pop("version", None)
        known = {f for f in cls.__dataclass_fields__ if f != "version"}
        kwargs = {k: v for k, v in data.items() if k in known}
        return cls(**kwargs)

    def replays(self, other: "RunManifest") -> bool:
        """True when ``other`` is a faithful replay: same inputs, same digest."""
        return not diff_manifests(self, other)

    def summary_line(self) -> str:
        backends = "->".join(self.backends) if self.backends else "-"
        n_events = sum(self.events.values())
        return (
            f"manifest: {self.kind}/{self.name} seed={self.seed} "
            f"backends={backends} events={n_events} digest={self.result_digest[:19]}..."
        )


def diff_manifests(a: RunManifest, b: RunManifest, *, include_volatile: bool = False) -> dict:
    """Fields that differ between two manifests: ``name -> (a_value, b_value)``.

    Volatile fields (timestamps, host, package versions, event counts —
    the last varies with wall-clock-dependent node ordering) are excluded
    unless ``include_volatile``; an empty dict therefore means "same run,
    same result".
    """
    da, db = a.to_dict(), b.to_dict()
    diff: dict[str, tuple] = {}
    for key in sorted(set(da) | set(db)):
        if key == "version":
            continue
        if not include_volatile and key in VOLATILE_FIELDS:
            continue
        va, vb = da.get(key), db.get(key)
        if key == "extra" and not include_volatile:
            va = {k: v for k, v in (va or {}).items() if k not in VOLATILE_EXTRA_KEYS}
            vb = {k: v for k, v in (vb or {}).items() if k not in VOLATILE_EXTRA_KEYS}
        if va != vb:
            diff[key] = (va, vb)
    return diff
