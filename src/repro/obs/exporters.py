"""Trace and event exporters: JSONL, Chrome trace-event, terminal report.

Three interchange formats over one span tree:

* **JSONL** — one JSON object per line per event; greppable, streamable,
  and the format CI uploads as an artifact.
* **Chrome trace-event** — a ``{"traceEvents": [...]}`` document loadable
  in ``chrome://tracing`` and https://ui.perfetto.dev.  Spans are emitted
  as complete (``"ph": "X"``) events with microsecond timestamps; markers
  as instant (``"ph": "i"``) events.  Each span's ``args`` carries its
  ``spanId``/``parentId``, so :func:`load_chrome_trace` reconstructs the
  exact tree — the round-trip is lossless up to float formatting.
* **terminal report** — :func:`render_report`: the span tree with
  durations/self-times, top-k span names by aggregate self-time, and the
  metrics table.
"""

from __future__ import annotations

import json
from pathlib import Path

from typing import TYPE_CHECKING

from repro.serialize import jsonable

from .metrics import MetricsRegistry
from .spans import Marker, Span

if TYPE_CHECKING:  # annotation-only: keeps this module stdlib-importable
    from repro.solver.telemetry import SolveEvent

__all__ = [
    "write_events_jsonl",
    "read_events_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "top_self_time",
    "render_span_tree",
    "render_report",
]


# -- JSONL event log -------------------------------------------------------


def write_events_jsonl(path: str | Path, events) -> Path:
    """Write one JSON object per event (``kind``, ``t``, payload flattened)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for ev in events:
            fh.write(json.dumps(jsonable(ev.to_dict()), allow_nan=False))
            fh.write("\n")
    return path


def read_events_jsonl(path: str | Path) -> list[SolveEvent]:
    """Load a JSONL event log back into :class:`SolveEvent` records."""
    from repro.solver.telemetry import SolveEvent

    events = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.pop("kind")
        if kind == "process_meta":
            # Process event files (repro.obs.propagate) prefix the log with
            # one metadata line; plain event readers skip it.
            continue
        t = float(obj.pop("t"))
        events.append(SolveEvent(kind=kind, t=t, data=obj))
    return events


# -- Chrome trace-event format ---------------------------------------------

_US = 1e6  # trace-event timestamps are microseconds


def to_chrome_trace(
    roots: list[Span],
    markers: list[Marker] = (),
    label: str = "repro",
    pid: int = 0,
    t_offset: float = 0.0,
) -> dict:
    """Span forest + markers as a Chrome trace-event document.

    ``pid`` and ``t_offset`` (seconds added to every timestamp) let the
    cross-process merge (:func:`repro.obs.propagate.merge_process_traces`)
    place each process's spans on its own pid lane, on one shared clock.
    """
    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    for root in roots:
        for span, _ in root.walk():
            args = {"spanId": span.span_id, "category": span.category}
            if span.parent_id is not None:
                args["parentId"] = span.parent_id
            if span.attrs:
                args["attrs"] = jsonable(span.attrs)
            if span.counters:
                args["counters"] = jsonable(span.counters)
            if span.truncated:
                args["truncated"] = True
            trace_events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": (span.start + t_offset) * _US,
                    "dur": span.duration * _US,
                    "pid": pid,
                    "tid": span.worker,
                    "args": args,
                }
            )
    for mark in markers:
        trace_events.append(
            {
                "name": mark.kind,
                "cat": "marker",
                "ph": "i",
                "s": "t",
                "ts": (mark.t + t_offset) * _US,
                "pid": pid,
                "tid": mark.worker,
                "args": jsonable(mark.data),
            }
        )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path,
    roots: list[Span],
    markers: list[Marker] = (),
    label: str = "repro",
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_chrome_trace(roots, markers, label), allow_nan=False))
    return path


def load_chrome_trace(path: str | Path) -> tuple[list[Span], list[Marker]]:
    """Reconstruct the span forest and markers from a trace-event file.

    Only documents written by :func:`write_chrome_trace` round-trip
    exactly (they carry ``spanId``/``parentId`` in ``args``); foreign
    trace files degrade gracefully to a flat list of root spans.
    """
    doc = json.loads(Path(path).read_text())
    records = doc["traceEvents"] if isinstance(doc, dict) else doc
    by_id: dict[int, Span] = {}
    parents: dict[int, int] = {}
    roots: list[Span] = []
    markers: list[Marker] = []
    anonymous = -1
    for rec in records:
        ph = rec.get("ph")
        if ph == "X":
            args = rec.get("args", {})
            span_id = args.get("spanId")
            if span_id is None:
                anonymous -= 1
                span_id = anonymous
            start = float(rec.get("ts", 0.0)) / _US
            span = Span(
                name=rec.get("name", "?"),
                category=args.get("category", rec.get("cat", "span")),
                start=start,
                end=start + float(rec.get("dur", 0.0)) / _US,
                span_id=int(span_id),
                worker=int(rec.get("tid", 0)),
                attrs=args.get("attrs", {}),
                counters=args.get("counters", {}),
                truncated=bool(args.get("truncated", False)),
            )
            by_id[span.span_id] = span
            if args.get("parentId") is not None:
                parents[span.span_id] = int(args["parentId"])
        elif ph == "i":
            markers.append(
                Marker(
                    kind=rec.get("name", "?"),
                    t=float(rec.get("ts", 0.0)) / _US,
                    data=rec.get("args", {}),
                    worker=int(rec.get("tid", 0)),
                )
            )
    for span_id, parent_id in parents.items():
        parent = by_id.get(parent_id)
        if parent is not None:
            by_id[span_id].parent_id = parent_id
            parent.children.append(by_id[span_id])
        else:
            roots.append(by_id[span_id])
    for span_id, span in by_id.items():
        if span_id not in parents:
            roots.append(span)
    # Children were appended in file order, which write order preserves.
    return roots, markers


# -- terminal rendering ----------------------------------------------------


def top_self_time(roots: list[Span], k: int = 5) -> list[tuple[str, float, int]]:
    """Top-``k`` span *names* by aggregate self-time: (name, seconds, count).

    ``node`` spans are skipped: their interval is heap residency (push to
    pop), which overlaps the owning solve span rather than partitioning
    it, so ranking them against exclusive compute time would be
    meaningless.
    """
    agg: dict[str, list[float]] = {}
    for root in roots:
        for span, _ in root.walk():
            if span.category == "node":
                continue
            entry = agg.setdefault(span.name, [0.0, 0])
            entry[0] += span.self_time
            entry[1] += 1
    ranked = sorted(agg.items(), key=lambda kv: -kv[1][0])
    return [(name, t, int(n)) for name, (t, n) in ranked[:k]]


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms" if seconds < 1.0 else f"{seconds:.3f}s"


def render_span_tree(roots: list[Span], max_children: int = 12) -> str:
    """Indented span tree; sibling runs longer than ``max_children`` are
    elided to head/tail with an aggregate line (B&B explores thousands of
    nodes — the report shows the shape, the trace file keeps every one)."""
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        pad = "  " * depth
        bits = [f"{pad}{span.name}", _fmt_ms(span.duration)]
        if span.children:
            bits.append(f"self={_fmt_ms(span.self_time)}")
        if span.counters:
            bits.append(" ".join(f"{k}={_fmt_num(v)}" for k, v in sorted(span.counters.items())))
        if span.truncated:
            bits.append("[truncated]")
        lines.append("  ".join(bits))
        kids = span.children
        if len(kids) > max_children:
            head = max_children // 2
            tail = max_children - head - 1
            shown = kids[:head]
            hidden = kids[head: len(kids) - tail]
            for child in shown:
                emit(child, depth + 1)
            hidden_t = sum(c.duration for c in hidden)
            lines.append(
                f"{'  ' * (depth + 1)}... {len(hidden)} more spans  {_fmt_ms(hidden_t)}"
            )
            for child in kids[len(kids) - tail:]:
                emit(child, depth + 1)
        else:
            for child in kids:
                emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines) if lines else "(no spans)"


def _fmt_num(v) -> str:
    if isinstance(v, float) and v != int(v):
        return f"{v:.4g}"
    return str(int(v)) if isinstance(v, (int, float)) else str(v)


def render_report(
    roots: list[Span],
    registry: MetricsRegistry | None = None,
    markers: list[Marker] = (),
    k: int = 5,
) -> str:
    """Full terminal report: span tree, hot spots, markers, metrics."""
    parts = ["== span tree ==", render_span_tree(roots)]
    hot = top_self_time(roots, k=k)
    if hot:
        parts.append(f"\n== top {len(hot)} by self-time ==")
        w = max(len(name) for name, _, _ in hot)
        for name, seconds, count in hot:
            parts.append(f"{name.ljust(w)}  {_fmt_ms(seconds):>10}  x{count}")
    interesting = [m for m in markers if m.kind in ("backend_degraded", "deadline_exceeded",
                                                   "warm_start_rejected", "fuzz_disagreement")]
    if interesting:
        parts.append("\n== notices ==")
        for m in interesting:
            detail = " ".join(f"{k2}={v}" for k2, v in m.data.items())
            parts.append(f"t={m.t:.3f}s {m.kind}: {detail}")
    if registry is not None and len(registry):
        parts.append("\n== metrics ==")
        parts.append(registry.render_table())
    return "\n".join(parts)
