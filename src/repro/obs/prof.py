"""Deterministic phase profiler over the telemetry event stream.

:func:`profile_events` folds a recorded event stream into a
:class:`PhaseProfile`: a partition of wall time across the phases the
solver stack already emits, refined by the instrumentation this layer
added at the emit sites —

* **simplex**: ``phase_end`` events for ``simplex_phase1`` /
  ``simplex_phase2`` / ``simplex_warm`` carry a ``breakdown`` dict
  splitting the phase into pricing, ratio test, basis update,
  refactorization and (on warm repairs) dual-repair seconds — emitted
  identically by both pivot engines, with the ``engine`` attribute
  telling them apart;
* **Benders**: the ``benders_subproblems`` phase carries
  ``subproblem_s`` (summed in-worker solve seconds), so the profile
  separates subproblem compute from fan-out/IPC overhead
  (``benders.ipc`` = phase wall minus per-worker average compute);
* **B&B**: ``lp_warm``/``lp_cold`` markers carry per-node LP durations
  (reported as side statistics — node heap residency overlaps the solve
  loop, so it is never double-counted into the wall partition);
* **service**: the server emits an instant ``service_queue_wait`` phase
  per job whose ``duration`` is submit-to-start time, attributing queue
  wait separately from solve time.

The partition property is what makes the profile trustworthy: every
span's *self* time lands in exactly one bucket, so the bucket totals sum
to the traced wall time (up to clock clamping).  :func:`to_speedscope`
exports the same tree as a speedscope-JSON "evented" profile
(https://www.speedscope.app/file-format-schema.json).

Forwarded worker events are profiled on the *parent* clock (their
``worker_t`` re-timing is for trace rendering): the parent clock is the
one whose total equals the wall time being partitioned.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from .spans import Span, Tracer

__all__ = [
    "PhaseProfile",
    "profile_events",
    "profile_spans",
    "parent_clock_spans",
    "to_speedscope",
    "write_speedscope",
]

#: Span categories whose intervals overlap their parent (heap residency,
#: work-unit slices) — excluded from the wall partition and the speedscope
#: nesting, counted as side statistics instead.
_OVERLAPPING = {"node", "benders_iter", "fuzz_case"}

_SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


@dataclass
class PhaseProfile:
    """Wall-time partition across phases, plus side statistics.

    ``entries`` maps bucket name to seconds and partitions the traced
    wall time; ``counts`` holds occurrence counts per bucket; ``extras``
    holds non-partition statistics (CPU seconds across workers, LP
    warm/cold totals, node residency).
    """

    wall: float = 0.0
    entries: dict = field(default_factory=dict)
    counts: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)

    @property
    def tracked(self) -> float:
        return sum(self.entries.values())

    @property
    def coverage(self) -> float:
        """Fraction of wall time attributed to a named bucket."""
        return self.tracked / self.wall if self.wall > 0 else math.nan

    def _add(self, name: str, seconds: float, n: int = 1) -> None:
        self.entries[name] = self.entries.get(name, 0.0) + max(0.0, seconds)
        self.counts[name] = self.counts.get(name, 0) + n

    def _extra(self, name: str, amount: float) -> None:
        self.extras[name] = self.extras.get(name, 0.0) + amount

    def to_dict(self) -> dict:
        return {
            "wall_s": self.wall,
            "tracked_s": self.tracked,
            "coverage": self.coverage,
            "entries": dict(sorted(self.entries.items(), key=lambda kv: -kv[1])),
            "counts": dict(self.counts),
            "extras": dict(self.extras),
        }

    def render(self) -> str:
        """Aligned terminal table, hottest bucket first."""
        rows = sorted(self.entries.items(), key=lambda kv: -kv[1])
        if not rows:
            return "(no phases recorded)"
        w = max(len(name) for name, _ in rows)
        lines = [f"{'phase'.ljust(w)}  {'seconds':>10}  {'share':>6}  count"]
        for name, seconds in rows:
            share = seconds / self.wall * 100 if self.wall > 0 else 0.0
            lines.append(
                f"{name.ljust(w)}  {seconds:>10.4f}  {share:>5.1f}%  "
                f"x{self.counts.get(name, 0)}"
            )
        lines.append(
            f"tracked {self.tracked:.4f}s of {self.wall:.4f}s wall "
            f"({self.coverage * 100:.1f}%)"
        )
        for name in sorted(self.extras):
            lines.append(f"  [{name}] {self.extras[name]:.4f}")
        return "\n".join(lines)


def _strip_worker_clock(events):
    """Re-create forwarded events without ``worker_t`` (parent-clock replay)."""
    from repro.solver.telemetry import SolveEvent

    for ev in events:
        if "worker_t" in ev.data:
            data = {k: v for k, v in ev.data.items() if k != "worker_t"}
            yield SolveEvent(kind=ev.kind, t=ev.t, data=data)
        else:
            yield ev


def parent_clock_spans(events):
    """Span forest + markers on the parent clock (``worker_t`` stripped).

    The representation both :func:`profile_events` and the speedscope
    export work from: forwarded worker spans keep their item-order
    nesting but are timed by the parent hub, so sibling intervals never
    overlap and self-times partition the wall.
    """
    tracer = Tracer()
    for ev in _strip_worker_clock(events):
        tracer.on_event(ev)
    roots = tracer.finish()
    return roots, tracer.markers


def profile_events(events) -> PhaseProfile:
    """Profile a recorded event sequence (e.g. ``EventRecorder.events``)."""
    roots, markers = parent_clock_spans(events)
    return profile_spans(roots, markers)


def profile_spans(roots: list[Span], markers=()) -> PhaseProfile:
    """Profile an already-reconstructed span forest."""
    prof = PhaseProfile()
    starts = [r.start for r in roots]
    ends = [r.end for r in roots if r.end is not None]
    if starts and ends:
        prof.wall = max(0.0, max(ends) - min(starts))
    for root in roots:
        _visit(root, prof)
    for mark in markers:
        if mark.kind in ("lp_warm", "lp_cold"):
            prof.counts[mark.kind] = prof.counts.get(mark.kind, 0) + 1
            dur = mark.data.get("duration")
            if dur is not None:
                prof._extra(f"{mark.kind}_s", float(dur))
    return prof


def _visit(span: Span, prof: PhaseProfile) -> None:
    if span.category in _OVERLAPPING:
        if span.category == "node":
            prof.counts["nodes"] = prof.counts.get("nodes", 0) + 1
            prof._extra("node_residency_s", span.duration)
        for child in span.children:
            _visit(child, prof)
        return

    if span.name == "benders_subproblems":
        # Fan-out phase: in-worker compute (reported by the workers
        # themselves) vs everything else — pickling, fork, result IPC.
        dur = span.duration
        sub_cpu = float(span.attrs.get("subproblem_s") or 0.0)
        workers = max(1, int(span.attrs.get("workers") or 1))
        sub_wall = min(dur, sub_cpu / workers) if sub_cpu > 0 else 0.0
        prof._add("benders.subproblem", sub_wall)
        prof._add("benders.ipc", dur - sub_wall)
        prof._extra("benders_subproblem_cpu_s", sub_cpu)
        # Descendants are the forwarded worker spans: their time is what
        # subproblem/ipc just partitioned — visiting them would double count.
        return

    owned = 0.0
    for child in span.children:
        if child.category not in _OVERLAPPING:
            owned += child.duration
        _visit(child, prof)

    if span.duration == 0.0 and "duration" in span.attrs:
        # A bare phase_end (no start): an instant span carrying time that
        # elapsed outside this event stream — e.g. service queue wait.
        prof._add(span.name, float(span.attrs["duration"]))
        return

    self_time = max(0.0, span.duration - owned)
    breakdown = span.attrs.get("breakdown")
    if isinstance(breakdown, dict) and breakdown:
        split = 0.0
        for comp, seconds in sorted(breakdown.items()):
            seconds = float(seconds)
            prof._add(f"simplex.{comp}", seconds)
            split += seconds
        prof._add(span.name, self_time - split)
    else:
        prof._add(span.name, self_time)


# -- speedscope export -----------------------------------------------------


def to_speedscope(roots: list[Span], name: str = "repro") -> dict:
    """Span forest as a speedscope-JSON "evented" profile.

    Overlapping categories (B&B node residency, iteration slices) are
    dropped — speedscope requires strictly nested open/close events; the
    remaining spans nest by construction (the tracer built them from a
    stack), with child bounds clamped into their parent for safety.
    """
    frames: list[dict] = []
    frame_ix: dict[str, int] = {}
    events: list[dict] = []
    cursor = 0.0

    def fid(frame_name: str) -> int:
        if frame_name not in frame_ix:
            frame_ix[frame_name] = len(frames)
            frames.append({"name": frame_name})
        return frame_ix[frame_name]

    def emit(span: Span, lo: float, hi: float) -> None:
        nonlocal cursor
        if span.category in _OVERLAPPING:
            return
        start = min(max(span.start, lo, cursor), hi)
        end_raw = span.end if span.end is not None else span.start
        end = min(max(end_raw, start), hi)
        frame = fid(span.name)
        events.append({"type": "O", "frame": frame, "at": start})
        cursor = start
        for child in span.children:
            emit(child, start, end)
        cursor = max(cursor, end)
        events.append({"type": "C", "frame": frame, "at": end})

    starts = [r.start for r in roots]
    ends = [r.end if r.end is not None else r.start for r in roots]
    start_value = min(starts) if starts else 0.0
    end_value = max(ends) if ends else 0.0
    for root in sorted(roots, key=lambda s: s.start):
        emit(root, start_value, max(end_value, start_value))

    return {
        "$schema": _SPEEDSCOPE_SCHEMA,
        "name": name,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "evented",
                "name": name,
                "unit": "seconds",
                "startValue": start_value,
                "endValue": end_value,
                "events": events,
            }
        ],
    }


def write_speedscope(path: str | Path, roots: list[Span], name: str = "repro") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_speedscope(roots, name=name), allow_nan=False))
    return path
