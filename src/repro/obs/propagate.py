"""Cross-process trace propagation: W3C ``traceparent`` + trace merging.

Spans die at two boundaries today: the :func:`repro.parallel.parallel_map`
fork (worker events come back tagged but the *identity* of the calling
trace is lost) and the ``repro.service`` HTTP hop (the server starts a
fresh event stream per job).  This module carries one identity across
both:

* :class:`TraceContext` — a (trace id, span id, sampling decision)
  triple, serialized as a W3C-``traceparent``-style token
  (``00-<32 hex>-<16 hex>-<01|00>``).  The service client injects it as a
  request header; the server parses it (garbled/missing tokens fall back
  to a fresh root — a bad header is never an error) and the job's solve
  runs under a child context.  ``parallel_map`` pickles the ambient
  context into task payloads so worker processes inherit the trace and
  its sampling decision.
* An **ambient context** per thread (:func:`current_trace` /
  :func:`activate`), so layers that never see each other — a campaign
  loop, the service client inside a policy, the pool — agree on the
  active trace without threading it through every signature.
* **Per-process event files** (:func:`write_process_events`): the
  ordinary JSONL event log prefixed with one ``process_meta`` line
  recording the process label, wall-clock epoch, and trace identity.
* :func:`merge_process_traces` — stitches any number of per-process
  files into a single Chrome-trace document: one pid lane per process,
  tid lanes per worker, clocks aligned on the recorded wall epochs, and
  ``s``/``f`` flow arrows from a client span to the server/worker spans
  it caused (matched on the hex span id the client span recorded in its
  attrs and the child process recorded as its ``parent_span_id``).

Everything here is stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import os
import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from typing import TYPE_CHECKING

from repro.serialize import jsonable

if TYPE_CHECKING:  # annotation-only: keeps this module stdlib-importable
    from repro.solver.telemetry import SolveEvent

__all__ = [
    "TRACEPARENT_HEADER",
    "TraceContext",
    "parse_traceparent",
    "current_trace",
    "activate",
    "ensure_trace",
    "write_process_events",
    "read_process_events",
    "collect_event_files",
    "merge_process_traces",
    "write_merged_trace",
]

#: HTTP header carrying the serialized context (lowercase, per W3C).
TRACEPARENT_HEADER = "traceparent"

_TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)


def _rand_hex(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class TraceContext:
    """One node of a distributed trace: who we are and whether we record.

    ``trace_id`` names the end-to-end operation (a campaign, a request);
    ``span_id`` names *this* hop.  Both are lowercase hex, 32 and 16
    digits.  ``sampled`` is the head-based sampling decision: children
    inherit it, and unsampled contexts suppress event capture in
    ``parallel_map`` workers.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    @classmethod
    def new_root(cls, sampled: bool = True) -> "TraceContext":
        """A fresh trace with random ids."""
        return cls(trace_id=_rand_hex(16), span_id=_rand_hex(8), sampled=sampled)

    def child(self) -> "TraceContext":
        """A new span under the same trace, inheriting the sampling bit."""
        return TraceContext(self.trace_id, _rand_hex(8), self.sampled)

    def to_traceparent(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-{'01' if self.sampled else '00'}"

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TraceContext":
        return cls(
            trace_id=str(d["trace_id"]),
            span_id=str(d["span_id"]),
            sampled=bool(d.get("sampled", True)),
        )


def parse_traceparent(header: str | None) -> TraceContext | None:
    """Parse a ``traceparent`` token; ``None`` on anything malformed.

    Strict per the W3C grammar: four ``-``-separated lowercase-hex
    fields, version ``ff`` reserved, all-zero trace/span ids invalid.  A
    missing or garbled header yields ``None`` — callers fall back to a
    fresh root; propagation failure is never a request failure.
    """
    if not header or not isinstance(header, str):
        return None
    m = _TRACEPARENT_RE.match(header.strip())
    if m is None:
        return None
    version, trace_id, span_id, flags = m.groups()
    if version == "ff":
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id,
                        sampled=bool(int(flags, 16) & 0x01))


# -- ambient context (per thread) ------------------------------------------

_local = threading.local()


def current_trace() -> TraceContext | None:
    """The context activated on this thread, or ``None``."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def activate(ctx: TraceContext | None):
    """Install ``ctx`` as the ambient context for the duration of the block.

    ``None`` deactivates (the block runs trace-free) — callers can pass an
    optional context unconditionally.  Re-entrant and thread-scoped.
    """
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    if ctx is None:
        # Mask any outer context rather than pushing None onto the stack.
        saved, _local.stack = stack, []
        try:
            yield None
        finally:
            _local.stack = saved
        return
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


def ensure_trace(sampled: bool = True) -> TraceContext:
    """The ambient context if one is active, else a fresh root (not activated)."""
    ctx = current_trace()
    return ctx if ctx is not None else TraceContext.new_root(sampled=sampled)


# -- per-process event files -----------------------------------------------


def write_process_events(
    path: str | Path,
    events,
    *,
    label: str,
    trace: "TraceContext | dict | None" = None,
    parent_span_id: str | None = None,
    wall_t0: float | None = None,
    pid: int | None = None,
) -> Path:
    """Write a JSONL event log prefixed with one ``process_meta`` line.

    ``wall_t0`` is the wall-clock time (``time.time()``) at which the
    process's hub clock read zero; :func:`merge_process_traces` aligns
    the per-process monotonic clocks on it.  ``parent_span_id`` is the
    hex span id (in *another* process's file) that caused this process's
    work — the hook the merged trace draws its flow arrow from.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta: dict = {
        "kind": "process_meta",
        "label": label,
        "pid": os.getpid() if pid is None else int(pid),
    }
    if wall_t0 is not None:
        meta["wall_t0"] = float(wall_t0)
    if trace is not None:
        td = trace.to_dict() if isinstance(trace, TraceContext) else dict(trace)
        if parent_span_id:
            td["parent_span_id"] = parent_span_id
        meta["trace"] = td
    with path.open("w") as fh:
        fh.write(json.dumps(jsonable(meta), allow_nan=False))
        fh.write("\n")
        for ev in events:
            fh.write(json.dumps(jsonable(ev.to_dict()), allow_nan=False))
            fh.write("\n")
    return path


def read_process_events(path: str | Path) -> "tuple[dict | None, list[SolveEvent]]":
    """Load a process event file: ``(meta or None, events)``.

    Plain event logs (no ``process_meta`` line) load with ``meta=None``,
    so the merge CLI accepts the artifacts older code already writes.
    """
    from repro.solver.telemetry import SolveEvent

    meta: dict | None = None
    events: list[SolveEvent] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if obj.get("kind") == "process_meta":
            if meta is None:
                obj.pop("kind")
                meta = obj
            continue
        kind = obj.pop("kind")
        t = float(obj.pop("t"))
        events.append(SolveEvent(kind=kind, t=t, data=obj))
    return meta, events


def collect_event_files(root: str | Path) -> list[Path]:
    """Every ``*.jsonl`` under ``root`` (recursively), sorted for determinism."""
    root = Path(root)
    if root.is_file():
        return [root]
    return sorted(p for p in root.rglob("*.jsonl") if p.is_file())


# -- cross-process trace merging -------------------------------------------


def merge_process_traces(paths, label: str = "merged") -> dict:
    """Stitch per-process event files into one Chrome-trace document.

    Each input file becomes a pid lane (named from its ``process_meta``
    label); worker tags inside a file keep their tid lanes.  Clocks are
    aligned on the recorded ``wall_t0`` epochs (files without one start
    at the merged origin).  When a file's meta records a
    ``parent_span_id`` and some span in another file carries that hex id
    in its ``span_id`` attr, an ``s``/``f`` flow-arrow pair links cause
    to effect across the pid lanes.  The document's ``otherData`` lists
    every distinct trace id seen — a healthy end-to-end run has one.
    """
    from .exporters import _US, to_chrome_trace
    from .spans import Tracer

    procs = []
    for p in paths:
        p = Path(p)
        meta, events = read_process_events(p)
        tracer = Tracer()
        tracer.replay(events)
        roots = tracer.finish()
        procs.append((p, meta or {}, roots, tracer.markers))

    epochs = [m.get("wall_t0") for _, m, _, _ in procs if m.get("wall_t0") is not None]
    base = min(epochs) if epochs else 0.0

    trace_events: list[dict] = []
    producers: dict[str, tuple[int, int, float]] = {}  # span-id hex -> (pid, tid, ts us)
    trace_ids: set[str] = set()
    lanes = []
    for idx, (path, meta, roots, markers) in enumerate(procs):
        pid = idx + 1
        wall_t0 = meta.get("wall_t0")
        offset = float(wall_t0) - base if wall_t0 is not None else 0.0
        proc_label = str(meta.get("label") or path.stem)
        trace = meta.get("trace") or {}
        if trace.get("trace_id"):
            trace_ids.add(str(trace["trace_id"]))
        sub = to_chrome_trace(roots, markers, label=proc_label, pid=pid, t_offset=offset)
        trace_events.extend(sub["traceEvents"])
        for root in roots:
            for sp, _ in root.walk():
                sid = sp.attrs.get("span_id")
                if isinstance(sid, str) and sid:
                    producers[sid] = (pid, sp.worker, (sp.start + offset) * _US)
        lanes.append((pid, offset, trace, roots))

    for pid, offset, trace, roots in lanes:
        parent = trace.get("parent_span_id")
        if not parent or parent not in producers:
            continue
        src_pid, src_tid, src_ts = producers[parent]
        if src_pid == pid:
            continue
        dst_ts = min(((r.start + offset) * _US for r in roots), default=offset * _US)
        arrow = {"name": "trace", "cat": "trace", "id": str(parent)}
        trace_events.append(
            {**arrow, "ph": "s", "ts": src_ts, "pid": src_pid, "tid": src_tid}
        )
        trace_events.append(
            {**arrow, "ph": "f", "bp": "e", "ts": max(dst_ts, src_ts), "pid": pid, "tid": 0}
        )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"label": label, "trace_ids": sorted(trace_ids)},
    }


def write_merged_trace(path: str | Path, paths, label: str = "merged") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(merge_process_traces(paths, label=label), allow_nan=False))
    return path
