"""Revised simplex engine: factored basis, Devex pricing, blocked kernels.

This is the successor of the dense-tableau loop in
:mod:`repro.solver.simplex`: instead of carrying the full ``(m+1, n+1)``
tableau and doing an O(m*n) rank-1 elimination per pivot, the engine keeps

* the constraint matrix ``A`` untouched (read-only, shared across phases),
* an LU-factored basis inverse (:class:`BasisFactor`) updated per pivot by a
  product-form eta transform collapsed into one rank-1 blocked numpy kernel
  (O(m^2) per pivot, pure BLAS),
* the basic values ``x_B`` and reduced costs ``red`` as maintained vectors,
  updated incrementally with one BTRAN row and one O(n) GEMV per pivot.

Per-pivot cost drops from O(m*n) *tableau-wide* elimination to
O(m^2 + n) vector updates, and warm re-solves skip the dense
``solve(B, A)`` body materialization entirely — the dominant cost of the
tableau warm path and the source of the large-tier speedup gated in
``repro bench-solver``.

Refactorization policy
----------------------

The factored inverse drifts as eta updates accumulate.  Three triggers force
a fresh LU factorization (LAPACK ``getrf``/``getri`` via ``np.linalg.inv``):

* an update-count cap (default 48 collapsed etas),
* a periodic residual stability check every 32 iterations
  (``||B x_B - b_eff||_inf > 1e-6 * (1 + ||b_eff||_inf)``),
* a tiny pivot element on a stale factor (the iteration is retried on exact
  data rather than pivoting on noise).

Optimality is only ever declared on a *fresh* factorization: when pricing
finds no violation on drifted vectors, the engine refactorizes, recomputes
``x_B``/``red`` exactly, and re-prices.  This is what keeps the exported
dual/Farkas certificates at the same exactness as the dense tableau's, and
what makes a re-solve from a solve's own basis report 0 iterations.

Pricing
-------

Devex pricing with a reference-framework weight per column (Forrest &
Goldfarb's approximate steepest edge): the entering column maximizes
``violation^2 / w`` where ``w`` approximates the squared norm of the column
in the current basis frame.  Weights update as a byproduct of the pivot row
already computed for the reduced-cost update, so Devex costs one extra O(n)
vector op per pivot.  The framework resets when weights overflow their
trust range.  The dense path's anti-cycling contract is preserved exactly:
after ``2m + 10`` consecutive degenerate steps the engine switches to
Bland's rule (smallest eligible index, smallest basis-index ratio
tie-break) until progress resumes.

The bounded-variable mechanics (at-upper nonbasic statuses, three-way ratio
test, bound flips with no basis change) mirror the tableau ops one-for-one
on the maintained vectors, so the two engines agree on every certified
answer and accept each other's :class:`~repro.solver.simplex.SimplexBasis`
warm starts.
"""

from __future__ import annotations

import math
from time import perf_counter

import numpy as np

from .telemetry import Deadline, Telemetry

__all__ = [
    "BasisFactor",
    "RevisedTableau",
    "NumericalTrouble",
    "revised_solve",
    "warm_solve_revised",
]

_EPS = 1e-9
#: Primal feasibility tolerance (same as the dense tableau engine).
_FEAS_TOL = 1e-7
#: Relative residual that triggers an out-of-schedule refactorization.
_RESID_TOL = 1e-6
#: Collapsed eta updates absorbed before a scheduled refactorization.
_MAX_UPDATES = 48
#: Iteration period of the residual stability check.
_CHECK_EVERY = 32
#: Devex weight ceiling before the reference framework resets.
_DEVEX_RESET = 1e7
#: Relative pivot magnitude below which a stale factor refuses to pivot.
_PIVOT_TOL = 1e-7


class NumericalTrouble(RuntimeError):
    """The factored path lost the basis (singular refactorization mid-solve).

    Cold solves catch this in :func:`repro.solver.simplex.solve_lp_simplex`
    and degrade loudly to the dense tableau engine; warm solves return
    ``None`` (fall back cold) instead.
    """


class BasisFactor:
    """LU-factored basis inverse with collapsed product-form eta updates.

    :meth:`refactor` runs a dense LU factorization of the current basis
    matrix (LAPACK ``getrf``/``getri`` via ``np.linalg.inv``).  Each pivot
    then applies one eta transform ``E_k^-1 = I + (e_r - d/d_r) e_r'`` to
    the stored inverse as a rank-1 blocked numpy kernel — O(m^2) with no
    Python-level loops — rather than keeping an eta file that would cost a
    Python-loop pass per FTRAN/BTRAN.  FTRAN/BTRAN are then single GEMVs
    against the maintained inverse, and ``BTRAN(e_r)`` is a free row read.
    """

    __slots__ = ("A", "m", "max_updates", "updates", "refactorizations", "_inv")

    def __init__(self, A: np.ndarray, max_updates: int | None = None) -> None:
        self.A = A
        self.m = A.shape[0]
        self.max_updates = _MAX_UPDATES if max_updates is None else int(max_updates)
        self.updates = 0
        self.refactorizations = 0
        self._inv: np.ndarray | None = None

    def refactor(self, basis: np.ndarray) -> bool:
        """Factorize ``A[:, basis]`` from scratch; ``False`` if singular."""
        try:
            inv = np.linalg.inv(self.A[:, basis])
        except np.linalg.LinAlgError:
            return False
        if not np.isfinite(inv).all():
            return False
        self._inv = np.ascontiguousarray(inv)
        self.updates = 0
        self.refactorizations += 1
        return True

    def adopt(self, inv: np.ndarray) -> None:
        """Install a previously computed inverse of the current basis.

        Used by warm re-solves whose parent exported its final factor: the
        basis matrix is unchanged by bound modifications, so the LU can be
        skipped entirely.  The array is copied because eta updates mutate
        the inverse in place and the hint is shared across sibling solves.
        Callers must validate the hint (residual check) before trusting it.
        """
        self._inv = inv.copy()
        self.updates = 0
        self.refactorizations += 1

    def ftran(self, col: np.ndarray) -> np.ndarray:
        """``B^-1 col`` (forward transformation) as one GEMV."""
        return self._inv @ col

    def btran(self, vec: np.ndarray) -> np.ndarray:
        """``B^-T vec`` (backward transformation) as one GEMV."""
        return self._inv.T @ vec

    def row(self, r: int) -> np.ndarray:
        """``BTRAN(e_r)`` — row ``r`` of the maintained inverse, read-only."""
        return self._inv[r]

    def update(self, r: int, d: np.ndarray) -> None:
        """Absorb the eta transform of a pivot into the inverse.

        ``d = B^-1 a_q`` is the entering spike and ``r`` the pivot row; the
        update is the rank-1 blocked kernel ``inv -= outer(d_masked, t)``
        with ``t = inv[r] / d[r]``.
        """
        inv = self._inv
        t = inv[r] / d[r]
        spike = d.copy()
        spike[r] = 0.0
        inv -= np.outer(spike, t)
        inv[r] = t
        self.updates += 1

    @property
    def stale(self) -> bool:
        return self.updates >= self.max_updates


class RevisedTableau:
    """Duck-typed stand-in for :class:`~repro.solver.simplex.SimplexTableau`.

    Carries the final revised-simplex state (basis, at-upper flags, kept
    rows, basic values, reduced costs, Farkas vector).  The dense tableau
    body ``T`` — the O(m^2 n) product ``B^-1 [A | b]`` that the Gomory cut
    generator reads fractional rows from — is materialized lazily on first
    access and cached, so plain LP solves and warm B&B re-solves never pay
    for it.
    """

    def __init__(
        self,
        A: np.ndarray,
        basis: np.ndarray,
        rows: np.ndarray | None = None,
        at_upper: np.ndarray | None = None,
        u: np.ndarray | None = None,
        x_B: np.ndarray | None = None,
        red: np.ndarray | None = None,
        obj: float | None = None,
        farkas: np.ndarray | None = None,
        y: np.ndarray | None = None,
        factor_inv: np.ndarray | None = None,
    ) -> None:
        self._A = A
        self.basis = basis
        self.rows = rows
        self.at_upper = at_upper
        self.u = u
        self.x_B = x_B
        self.red = red
        self.obj = obj
        self.farkas = farkas
        #: Row duals ``B^-T c_B`` of the final fresh basis (kept rows only);
        #: lets the dual-certificate export skip a LAPACK solve.
        self.y = y
        #: Final basis inverse — exported as a warm-start factor hint so
        #: child re-solves can skip their LU refactorization.
        self.factor_inv = factor_inv
        self._T: np.ndarray | None = None

    @property
    def m(self) -> int:
        return self._A.shape[0]

    @property
    def n(self) -> int:
        return self._A.shape[1]

    def solution(self) -> np.ndarray:
        x = np.zeros(self.n)
        if self.at_upper is not None and self.at_upper.any():
            up = self.at_upper[: self.n] & np.isfinite(self.u[: self.n])
            x[up] = self.u[: self.n][up]
        x[self.basis] = self.x_B
        return x

    @property
    def T(self) -> np.ndarray:
        """Dense tableau body, computed on demand (Gomory cuts only)."""
        if self._T is None:
            m, n = self._A.shape
            T = np.zeros((m + 1, n + 1))
            if m:
                T[:-1, :n] = np.linalg.solve(self._A[:, self.basis], self._A)
                T[:-1, -1] = self.x_B
            if self.red is not None:
                T[-1, :n] = self.red[:n]
            if self.obj is not None:
                T[-1, -1] = -self.obj
            self._T = T
        return self._T


class _Core:
    """Bounded-variable revised simplex state over the kept rows.

    Mirrors the dense tableau's pivot semantics one-for-one on the
    maintained ``(x_B, red, basis, at_upper)`` vectors: same violation
    definition, same three-way ratio test, same flip-before-pivot ordering,
    same Dantzig/Devex-to-Bland stall switch and tie-breaks.  ``breakdown``
    (telemetry-enabled call sites only) accumulates wall seconds under
    ``"pricing"``, ``"ratio_test"``, ``"basis_update"`` and
    ``"refactorization"``; ``None`` keeps the hot loop timer-free.
    """

    def __init__(
        self,
        A: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        u: np.ndarray,
        basis: np.ndarray,
        at_upper: np.ndarray,
        deadline: Deadline | None = None,
        breakdown: dict | None = None,
        max_updates: int | None = None,
    ) -> None:
        self.A = np.ascontiguousarray(A)
        self.b = b
        self.c = c
        self.u = u
        self.m, self.ncols = self.A.shape
        self.basis = basis
        self.at_upper = at_upper
        self.in_basis = np.zeros(self.ncols, dtype=bool)
        self.in_basis[basis] = True
        self.deadline = deadline
        self.breakdown = breakdown
        self.factor = BasisFactor(self.A, max_updates=max_updates)
        self.x_B = np.zeros(self.m)
        self.red = np.zeros(self.ncols)
        self.y: np.ndarray | None = None
        self.w = np.ones(self.ncols)  # Devex reference weights
        # True when x_B/red were just recomputed from a fresh factorization;
        # optimality is only declared while this holds.
        self.fresh = False

    @property
    def track(self) -> bool:
        return self.breakdown is not None

    def _acc(self, key: str, t0: float) -> float:
        now = perf_counter()
        bd = self.breakdown
        bd[key] = bd.get(key, 0.0) + now - t0
        return now

    # -- state maintenance -------------------------------------------------

    def b_eff(self) -> np.ndarray:
        """RHS seen by the basis: ``b`` minus at-upper nonbasic columns."""
        up = self.at_upper
        if up.any():
            return self.b - self.A[:, up] @ self.u[up]
        return self.b.copy()

    def recompute_red(self) -> None:
        y = self.factor.btran(self.c[self.basis])
        self.red = self.c - y @ self.A
        self.red[self.basis] = 0.0
        self.y = y  # row duals of the current (fresh) basis

    def refresh(self, recompute_red: bool = True, hint: np.ndarray | None = None) -> bool:
        """Refactorize and rebuild ``x_B`` (and optionally ``red``) exactly.

        ``hint`` is an optional precomputed inverse of the current basis
        matrix (a parent solve's exported factor).  It is adopted only when
        the rebuilt ``x_B`` passes the residual stability check against the
        actual basis columns — a stale or mismatched hint silently falls
        through to a real LU factorization, never to a wrong basis.
        """
        t0 = perf_counter() if self.track else 0.0
        ok = False
        if hint is not None and hint.shape == (self.m, self.m):
            self.factor.adopt(hint)
            self.x_B = self.factor.ftran(self.b_eff())
            ok = bool(np.isfinite(self.x_B).all()) and self.residual_ok()
        if not ok:
            ok = self.factor.refactor(self.basis)
            if ok:
                self.x_B = self.factor.ftran(self.b_eff())
                ok = bool(np.isfinite(self.x_B).all())
        if ok:
            if recompute_red:
                self.recompute_red()
            self.fresh = True
        if self.track:
            self._acc("refactorization", t0)
        return ok

    def residual_ok(self) -> bool:
        b_eff = self.b_eff()
        resid = self.A[:, self.basis] @ self.x_B - b_eff
        scale = 1.0 + float(np.abs(b_eff).max(initial=0.0))
        return float(np.abs(resid).max(initial=0.0)) <= _RESID_TOL * scale

    def _maintenance(self, it: int) -> None:
        """Scheduled + stability-triggered refactorization after a pivot."""
        if self.factor.stale:
            if not self.refresh():
                raise NumericalTrouble("singular basis on scheduled refactorization")
            return
        if it % _CHECK_EVERY == 0:
            t0 = perf_counter() if self.track else 0.0
            drifted = not self.residual_ok()
            if self.track:
                self._acc("refactorization", t0)
            if drifted and not self.refresh():
                raise NumericalTrouble("singular basis on stability refactorization")

    # -- pivot application -------------------------------------------------

    def flip_to_lower(self, q: int, d: np.ndarray) -> None:
        """Re-express an at-upper nonbasic column at its lower bound."""
        self.x_B += self.u[q] * d
        self.at_upper[q] = False

    def flip_to_upper(self, q: int, d: np.ndarray) -> None:
        """Re-express a nonbasic column at its (finite) upper bound."""
        self.x_B -= self.u[q] * d
        self.at_upper[q] = True

    def apply_pivot(
        self, row: int, q: int, d: np.ndarray, arow: np.ndarray | None = None,
        update_red: bool = True,
    ) -> int:
        """Basis change at ``(row, q)`` with entering spike ``d = B^-1 a_q``.

        Applies the same rank-1 updates the tableau pivot performs, but on
        the maintained vectors: O(m) on ``x_B``, one BTRAN row + one O(n)
        GEMV on ``red``, one O(m^2) eta collapse on the factor.  Returns the
        leaving column.
        """
        leave = int(self.basis[row])
        xq = self.x_B[row] / d[row]
        self.x_B -= xq * d
        self.x_B[row] = xq
        if update_red:
            if arow is None:
                arow = self.factor.row(row) @ self.A
            theta = self.red[q] / d[row]
            if theta != 0.0:
                self.red -= theta * arow
            # Devex weight propagation on the normalized pivot row (Forrest-
            # Goldfarb reference framework), a byproduct of ``arow``.
            ref = max(float(self.w[q]), 1.0)
            alpha = arow / d[row]
            np.maximum(self.w, alpha * alpha * ref, out=self.w)
            self.w[leave] = max(ref / (d[row] * d[row]), 1.0)
            if float(self.w.max()) > _DEVEX_RESET:
                self.w[:] = 1.0
        self.basis[row] = q
        self.in_basis[leave] = False
        self.in_basis[q] = True
        self.factor.update(row, d)
        self.fresh = False
        if update_red:
            self.red[self.basis] = 0.0
        return leave

    def solution(self) -> np.ndarray:
        x = np.zeros(self.ncols)
        up = self.at_upper & np.isfinite(self.u)
        x[up] = self.u[up]
        x[self.basis] = self.x_B
        return x

    # -- primal loop -------------------------------------------------------

    def primal(self, max_iter: int) -> tuple[str, int]:
        """Bounded primal simplex to a terminal state.

        Status in ``{"optimal", "unbounded", "limit", "deadline"}``; the
        iteration count matches the tableau engine's (bound flips count).
        """
        m = self.m
        track = self.track
        stall = 0
        bland = False
        it = 0
        while it < max_iter:
            if self.deadline is not None and self.deadline.expired():
                return "deadline", it
            t0 = perf_counter() if track else 0.0
            # Bound-aware violation: at-lower columns improve when red < 0,
            # at-upper when red > 0; basic columns masked out.
            viol = np.where(self.at_upper, self.red, -self.red)
            viol[self.in_basis] = -np.inf
            if bland:
                cand = np.nonzero(viol > _EPS)[0]
                q = int(cand[0]) if cand.size else -1
            else:
                score = np.where(viol > _EPS, viol * viol / self.w, -np.inf)
                q = int(np.argmax(score))
                if viol[q] <= _EPS:
                    q = -1
            if q < 0:
                if track:
                    _ = self._acc("pricing", t0)
                if self.fresh:
                    return "optimal", it
                # Apparent optimum on drifted vectors: confirm on exact data.
                if not self.refresh():
                    raise NumericalTrouble("singular basis at optimality confirmation")
                continue
            from_upper = bool(self.at_upper[q])
            if track:
                t0 = self._acc("pricing", t0)

            d = self.factor.ftran(self.A[:, q])
            x_B = self.x_B
            ub_basis = self.u[self.basis]
            # Three-way ratio test on the entering step length t >= 0.
            if from_upper:
                dec = d < -_EPS
                inc = d > _EPS
            else:
                dec = d > _EPS
                inc = d < -_EPS
            ratios = np.full(m, np.inf)
            ratios[dec] = np.maximum(x_B[dec], 0.0) / np.abs(d[dec])
            fin_inc = inc & np.isfinite(ub_basis)
            ratios[fin_inc] = (
                np.maximum(ub_basis[fin_inc] - x_B[fin_inc], 0.0) / np.abs(d[fin_inc])
            )
            t_own = self.u[q]
            if m:
                row = int(np.argmin(ratios))
                t_row = float(ratios[row])
            else:
                row, t_row = -1, math.inf
            if not math.isfinite(t_own) and not math.isfinite(t_row):
                if track:
                    self._acc("ratio_test", t0)
                return "unbounded", it
            if t_own <= t_row:
                if track:
                    t0 = self._acc("ratio_test", t0)
                # Bound flip: no basis change, O(m) update of x_B only.
                if from_upper:
                    self.flip_to_lower(q, d)
                else:
                    self.flip_to_upper(q, d)
                if track:
                    self._acc("basis_update", t0)
                if t_own <= _EPS:
                    stall += 1
                    if stall > 2 * m + 10:
                        bland = True
                else:
                    stall = 0
                    bland = False
                it += 1
                continue
            if bland:
                ties = np.nonzero(np.abs(ratios - t_row) <= _EPS * (1 + abs(t_row)))[0]
                row = int(min(ties, key=lambda i: self.basis[i]))
            if not self.fresh and abs(d[row]) < _PIVOT_TOL * (1.0 + float(np.abs(d).max())):
                # Tiny pivot on a stale factor: refactorize and retry the
                # iteration on exact data instead of pivoting on noise.
                if track:
                    self._acc("ratio_test", t0)
                if not self.refresh():
                    raise NumericalTrouble("singular basis on tiny-pivot refactorization")
                continue
            leave_to_upper = (d[row] > 0.0) if from_upper else (d[row] < 0.0)
            degenerate = t_row <= _EPS
            if track:
                t0 = self._acc("ratio_test", t0)
            if from_upper:
                self.flip_to_lower(q, d)
            leave = self.apply_pivot(row, q, d)
            if leave_to_upper:
                # Post-pivot column of the leaving variable, in closed form.
                col_new = -d / d[row]
                col_new[row] = 1.0 / d[row]
                self.flip_to_upper(leave, col_new)
            if track:
                self._acc("basis_update", t0)
            it += 1
            if degenerate:
                stall += 1
                if stall > 2 * m + 10:
                    bland = True
            else:
                stall = 0
                bland = False
            self._maintenance(it)
        return "limit", max_iter

    # -- dual repair loop --------------------------------------------------

    def dual(self, max_iter: int) -> tuple[str, int]:
        """Bounded dual simplex: restore primal feasibility (warm repair).

        Same leaving/entering rules as the tableau's ``_iterate_dual``:
        most-violated basic leaves, smallest reduced-cost ratio enters
        (smallest-index tie-break).  Status in ``{"feasible", "infeasible",
        "limit", "deadline"}``.
        """
        m = self.m
        it = 0
        while it < max_iter:
            if self.deadline is not None and self.deadline.expired():
                return "deadline", it
            if m == 0:
                return "feasible", it
            x_B = self.x_B
            ub_basis = self.u[self.basis]
            below = -x_B
            over = np.where(np.isfinite(ub_basis), x_B - ub_basis, -np.inf)
            viol = np.maximum(below, over)
            row = int(np.argmax(viol))
            if viol[row] <= _FEAS_TOL:
                return "feasible", it
            leave_to_upper = over[row] > below[row]
            arow = self.factor.row(row) @ self.A
            nonbasic = ~self.in_basis
            at_up = self.at_upper
            if leave_to_upper:
                elig = nonbasic & ((~at_up & (arow > _EPS)) | (at_up & (arow < -_EPS)))
            else:
                elig = nonbasic & ((~at_up & (arow < -_EPS)) | (at_up & (arow > _EPS)))
            idx = np.nonzero(elig)[0]
            if idx.size == 0:
                return "infeasible", it
            ratios = np.abs(self.red[idx]) / np.abs(arow[idx])
            best = float(ratios.min())
            q = int(idx[ratios <= best + _EPS * (1.0 + best)][0])
            d = self.factor.ftran(self.A[:, q])
            if abs(d[row]) <= _EPS:
                # The FTRAN disagrees with the BTRAN row on a near-zero
                # pivot: the factor has drifted too far to trust.
                if not self.refresh():
                    raise NumericalTrouble("singular basis in dual repair")
                continue
            if self.at_upper[q]:
                self.flip_to_lower(q, d)
            leave = self.apply_pivot(row, q, d, arow=arow)
            if leave_to_upper:
                col_new = -d / d[row]
                col_new[row] = 1.0 / d[row]
                self.flip_to_upper(leave, col_new)
            it += 1
            self._maintenance(it)
        return "limit", max_iter


def revised_solve(
    sf,
    max_iter: int = 50_000,
    deadline: Deadline | None = None,
    telemetry: Telemetry | None = None,
    max_updates: int | None = None,
) -> tuple[str, np.ndarray | None, float, int, RevisedTableau | None]:
    """Two-phase revised simplex on a :class:`StandardForm`.

    Drop-in replacement for the cold :func:`repro.solver.simplex
    .simplex_solve` path: same return tuple, same phase events
    (``simplex_phase1``/``simplex_phase2`` with ``pivots`` and ``breakdown``
    payloads), same Farkas convention on infeasible exits.  Raises
    :class:`NumericalTrouble` when a basis refuses to factorize — the caller
    degrades to the dense tableau engine.
    """
    A, b, c, u = sf.A, sf.b, sf.c, sf.u
    m, n = A.shape

    # Phase 1: artificial identity basis, artificial costs 1.
    A1 = np.hstack([A, np.eye(m)])
    c1 = np.concatenate([np.zeros(n), np.ones(m)])
    u1 = np.concatenate([u, np.full(m, np.inf)])
    basis = np.arange(n, n + m)
    at_upper = np.zeros(n + m, dtype=bool)
    core = _Core(
        A1, b, c1, u1, basis, at_upper,
        deadline=deadline, max_updates=max_updates,
    )
    if not core.refresh():
        raise NumericalTrouble("phase-1 identity basis refused to factorize")

    def _run(core: _Core, phase: str) -> tuple[str, int]:
        if telemetry:
            with telemetry.phase(phase, rows=core.m, cols=n, engine="revised") as info:
                core.breakdown = {}
                status, its = core.primal(max_iter)
                info["pivots"] = its
                info["breakdown"] = core.breakdown
                info["refactorizations"] = core.factor.refactorizations
                core.breakdown = None
            return status, its
        return core.primal(max_iter)

    status, it1 = _run(core, "simplex_phase1")
    if status in ("limit", "deadline"):
        return status, None, math.nan, it1, None
    art_basic = core.basis >= n
    z1 = float(np.maximum(core.x_B[art_basic], 0.0).sum()) if art_basic.any() else 0.0
    if z1 > 1e-7:
        # Farkas vector: the phase-1 duals y = B^-T c1_B on the final
        # (fresh) basis — identical to the tableau's 1 - red(artificials).
        farkas = core.factor.btran(c1[core.basis])
        tab = RevisedTableau(
            A, core.basis.copy(), rows=np.arange(m),
            at_upper=core.at_upper.copy(), u=u1, farkas=farkas,
        )
        return "infeasible", None, math.nan, it1, tab

    # Drive remaining zero-valued artificials out of the basis.
    for i in np.nonzero(core.basis >= n)[0]:
        arow = core.factor.row(int(i)) @ A1[:, :n]
        candidates = np.nonzero(np.abs(arow) > _EPS)[0]
        if candidates.size:
            q = int(candidates[0])
            d = core.factor.ftran(A1[:, q])
            if core.at_upper[q]:
                core.flip_to_lower(q, d)
            core.apply_pivot(int(i), q, d, update_red=False)
    # Rows still basic in an artificial are redundant: drop them.
    keep = core.basis < n
    row_ids = np.nonzero(keep)[0]
    basis2 = core.basis[keep].copy()
    at_upper2 = core.at_upper[:n].copy()
    A2 = A[row_ids]
    b2 = b[row_ids]

    core2 = _Core(
        A2, b2, c, u, basis2, at_upper2,
        deadline=deadline, max_updates=max_updates,
    )
    if not core2.refresh():
        raise NumericalTrouble("phase-2 basis singular after redundant-row drop")
    status, it2 = _run(core2, "simplex_phase2")
    if status == "optimal":
        x = core2.solution()
        obj = float(c @ x)
        tableau = RevisedTableau(
            A2, core2.basis, rows=row_ids, at_upper=core2.at_upper,
            u=u.copy(), x_B=core2.x_B, red=core2.red, obj=obj,
            y=core2.y, factor_inv=core2.factor._inv,
        )
        return "optimal", x, obj, it1 + it2, tableau
    if status == "unbounded":
        return "unbounded", None, -math.inf, it1 + it2, None
    return status, None, math.nan, it1 + it2, None


def warm_solve_revised(
    sf,
    warm,
    max_iter: int,
    deadline: Deadline | None,
    breakdown: dict | None = None,
    max_updates: int | None = None,
) -> tuple[str, np.ndarray | None, float, int, RevisedTableau | None, str] | None:
    """Phase-2-only re-solve from a previous basis on the factored engine.

    Same contract as the tableau's ``_warm_solve`` (``None`` requests a cold
    solve; the returned tuple appends the repair ``mode``), but the basis is
    refactorized directly — no O(m^2 n) ``solve(B, A)`` body
    materialization, which is what makes warm-heavy B&B workloads several
    times faster on this engine.
    """
    m_all, n = sf.A.shape
    rows = np.asarray(warm.rows, dtype=int)
    basis = warm.basis.astype(int).copy()
    if rows.size != basis.size or (rows.size == 0 and m_all > 0):
        return None
    if rows.size and (rows.max() >= m_all or basis.max() >= n):
        return None
    u = sf.u
    at_upper = warm.at_upper.copy()
    at_upper &= np.isfinite(u)
    at_upper[basis] = False

    core = _Core(
        sf.A[rows], sf.b[rows], sf.c, u, basis, at_upper,
        deadline=deadline, breakdown=breakdown, max_updates=max_updates,
    )
    # A parent solve's exported factor skips the LU when the basis matrix
    # is unchanged (the bound-modified re-solve case); refresh() validates
    # it with the residual check before trusting it.
    if not core.refresh(hint=getattr(warm, "factor_hint", None)):
        return None

    scale = 1.0 + float(np.abs(core.x_B).max(initial=0.0))
    ub_basis = u[basis]
    primal_ok = bool(
        np.all(core.x_B >= -_FEAS_TOL * scale)
        and np.all((core.x_B <= ub_basis + _FEAS_TOL * scale) | ~np.isfinite(ub_basis))
    )
    cscale = 1.0 + float(np.abs(sf.c).max(initial=0.0))
    dual_viol = np.where(core.at_upper, core.red, -core.red)
    dual_viol[core.in_basis] = -np.inf
    dual_ok = bool(np.all(dual_viol <= _FEAS_TOL * cscale))

    iters = 0
    mode = "primal"
    if not primal_ok:
        if not dual_ok:
            return None
        mode = "dual"
        cap = min(max_iter, 4 * (rows.size + n) + 100)
        repair_t0 = perf_counter() if breakdown is not None else 0.0
        # Suspend the per-section breakdown during repair so dual seconds
        # land only in "dual_repair" (the profiler partitions the phase).
        saved, core.breakdown = core.breakdown, None
        try:
            dstat, dit = core.dual(cap)
        except NumericalTrouble:
            return None
        finally:
            core.breakdown = saved
            if breakdown is not None:
                breakdown["dual_repair"] = (
                    breakdown.get("dual_repair", 0.0) + perf_counter() - repair_t0
                )
        iters += dit
        if dstat == "deadline":
            return "deadline", None, math.nan, iters, None, mode
        if dstat != "feasible":
            return None
    try:
        status, pit = core.primal(max_iter)
    except NumericalTrouble:
        return None
    iters += pit
    if status == "optimal":
        x = core.solution()
        if rows.size < m_all:
            dropped = np.setdiff1d(np.arange(m_all), rows, assume_unique=False)
            resid = sf.A[dropped] @ x - sf.b[dropped]
            if np.abs(resid).max(initial=0.0) > 1e-6 * scale:
                return None
        obj = float(sf.c @ x)
        tableau = RevisedTableau(
            core.A, core.basis, rows=rows, at_upper=core.at_upper,
            u=u.copy(), x_B=core.x_B, red=core.red, obj=obj,
            y=core.y, factor_inv=core.factor._inv,
        )
        return "optimal", x, obj, iters, tableau, mode
    if status == "unbounded":
        return "unbounded", None, -math.inf, iters, None, mode
    if status == "deadline":
        return "deadline", None, math.nan, iters, None, mode
    return None  # "limit" on the warm path: retry cold
