"""Unified solve entry points dispatching across backends.

Callers build a :class:`~repro.solver.model.Model` and call :func:`solve`;
the backend string picks the engine:

``"auto"``
    HiGHS (`scipy`) when available for the problem class, otherwise the
    pure-Python stack.  This is the default everywhere in the library.
    The fallback chain is HiGHS -> pure simplex; each hop emits a
    ``backend_degraded`` telemetry event and a :class:`RuntimeWarning`.
``"simplex"``
    Pure-Python two-phase simplex (LP) / simplex-based branch-and-bound
    (MILP).  The from-scratch reference implementation.
``"simplex+cuts"``
    Same, with Gomory mixed-integer cuts at the root.
``"scipy"``
    ``scipy.optimize.linprog`` / ``scipy.optimize.milp`` (HiGHS).
``"bb-scipy"``
    Our branch-and-bound driver over HiGHS LP relaxations — used by the
    solver ablation benchmark to time the B&B machinery itself.

Every entry point additionally accepts

``listener``
    A telemetry callback (callable or object with ``on_event``; see
    :mod:`repro.solver.telemetry`) receiving structured solve events:
    phase timers, simplex pivot counts, B&B node lifecycle, incumbent
    updates, degradation notices.
``deadline`` / ``time_limit``
    One wall-clock budget for the *whole* solve, threaded through branch
    and bound, cut rounds, simplex pivot loops, and the HiGHS options.
    On expiry the best incumbent is returned with status ``FEASIBLE``
    (or ``TIME_LIMIT`` when nothing feasible was found) — never a hang,
    never an exception.
"""

from __future__ import annotations

import warnings

from .branch_bound import BranchAndBoundOptions, branch_and_bound
from .model import CompiledProblem, Model
from .presolve import presolve
from .result import SolverResult, SolverStatus
from .scipy_backend import scipy_available, solve_lp_scipy, solve_milp_scipy
from .simplex import solve_lp_simplex
from .telemetry import Deadline, Telemetry

__all__ = ["solve", "solve_compiled", "BACKENDS"]

BACKENDS = ("auto", "simplex", "simplex+cuts", "scipy", "bb-scipy")


def _degrade(telemetry: Telemetry | None, from_backend: str, to_backend: str, reason: str) -> None:
    warnings.warn(
        f"backend {from_backend!r} unavailable ({reason}); falling back to "
        f"{to_backend!r}",
        RuntimeWarning,
        stacklevel=3,
    )
    if telemetry:
        telemetry.emit(
            "backend_degraded",
            from_backend=from_backend,
            to_backend=to_backend,
            reason=reason,
        )


def _dispatch(
    problem: CompiledProblem,
    backend: str,
    bb_options: BranchAndBoundOptions | None,
    deadline: Deadline | None,
    telemetry: Telemetry | None,
    backend_kwargs: dict,
) -> SolverResult:
    is_mip = bool(problem.integrality.any())

    if backend == "scipy":
        if is_mip:
            return solve_milp_scipy(problem, deadline=deadline, telemetry=telemetry, **backend_kwargs)
        return solve_lp_scipy(problem, deadline=deadline, telemetry=telemetry, **backend_kwargs)

    if backend == "bb-scipy":
        if not is_mip:
            return solve_lp_scipy(problem, deadline=deadline, telemetry=telemetry, **backend_kwargs)
        return branch_and_bound(
            problem,
            lambda p: solve_lp_scipy(p, deadline=deadline),
            options=bb_options,
            deadline=deadline,
            telemetry=telemetry,
        )

    # pure-python stack
    if not is_mip:
        return solve_lp_simplex(problem, deadline=deadline, telemetry=telemetry, **backend_kwargs)
    opts = bb_options or BranchAndBoundOptions()
    if backend == "simplex+cuts":
        opts = BranchAndBoundOptions(**{**opts.__dict__, "use_root_cuts": True})
    return branch_and_bound(
        problem,
        lambda p, warm_start=None: solve_lp_simplex(p, deadline=deadline, warm_start=warm_start),
        options=opts,
        deadline=deadline,
        telemetry=telemetry,
    )


def solve_compiled(
    problem: CompiledProblem,
    backend: str = "auto",
    use_presolve: bool = True,
    bb_options: BranchAndBoundOptions | None = None,
    listener=None,
    deadline: Deadline | float | None = None,
    time_limit: float | None = None,
    **backend_kwargs,
) -> SolverResult:
    """Solve a compiled problem; see module docstring for backend names."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")

    telemetry = Telemetry.from_listener(listener)
    if isinstance(deadline, (int, float)):
        deadline = Deadline(float(deadline))
    if deadline is None and time_limit is not None:
        deadline = Deadline(float(time_limit))

    if telemetry:
        telemetry.emit(
            "solve_start",
            backend=backend,
            num_vars=problem.num_vars,
            num_constraints=problem.num_constraints,
            is_mip=bool(problem.integrality.any()),
            budget=deadline.remaining() if deadline is not None else None,
        )

    def done(res: SolverResult) -> SolverResult:
        if deadline is not None:
            res.extra.setdefault("wall_time", deadline.elapsed())
        if telemetry:
            telemetry.emit(
                "solve_end",
                status=res.status.value,
                objective=res.objective,
                nodes=res.nodes,
                iterations=res.iterations,
            )
        return res

    if use_presolve:
        if telemetry:
            with telemetry.phase("presolve") as info:
                pre = presolve(problem)
                info["rows_removed"] = pre.rows_removed
                info["bounds_tightened"] = pre.bounds_tightened
        else:
            pre = presolve(problem)
        if pre.infeasible:
            return done(SolverResult(status=SolverStatus.INFEASIBLE, extra={"presolve": pre}))
        problem = pre.problem

    if backend == "auto":
        if scipy_available():
            backend = "scipy"
        else:
            _degrade(telemetry, "scipy", "simplex", "scipy is not importable")
            backend = "simplex"
        # The auto chain also absorbs runtime failures of the fast path:
        # an ERROR status or unexpected exception from HiGHS retries on the
        # pure-Python stack instead of surfacing a crash to the planner.
        if backend == "scipy":
            try:
                res = _dispatch(problem, "scipy", bb_options, deadline, telemetry, backend_kwargs)
            except Exception as exc:  # pragma: no cover - defensive path
                _degrade(telemetry, "scipy", "simplex", f"runtime failure: {exc}")
                res = None
            if res is not None and res.status is not SolverStatus.ERROR:
                return done(res)
            if res is not None:
                _degrade(telemetry, "scipy", "simplex", "backend returned ERROR status")
            backend = "simplex"

    return done(_dispatch(problem, backend, bb_options, deadline, telemetry, backend_kwargs))


def solve(model: Model, backend: str = "auto", **kwargs) -> SolverResult:
    """Compile and solve a :class:`Model`.

    Returns a :class:`SolverResult`; read variable values back with
    ``result.value_of(var)``.  Accepts ``listener=`` (telemetry events),
    ``deadline=``/``time_limit=`` (wall-clock budget) and forwards any
    other keyword to :func:`solve_compiled`.
    """
    return solve_compiled(model.compile(), backend=backend, **kwargs)
