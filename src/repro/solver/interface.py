"""Unified solve entry points dispatching across backends.

Callers build a :class:`~repro.solver.model.Model` and call :func:`solve`;
the backend string picks the engine:

``"auto"``
    HiGHS (`scipy`) when available for the problem class, otherwise the
    pure-Python stack.  This is the default everywhere in the library.
``"simplex"``
    Pure-Python two-phase simplex (LP) / simplex-based branch-and-bound
    (MILP).  The from-scratch reference implementation.
``"simplex+cuts"``
    Same, with Gomory mixed-integer cuts at the root.
``"scipy"``
    ``scipy.optimize.linprog`` / ``scipy.optimize.milp`` (HiGHS).
``"bb-scipy"``
    Our branch-and-bound driver over HiGHS LP relaxations — used by the
    solver ablation benchmark to time the B&B machinery itself.
"""

from __future__ import annotations

from .branch_bound import BranchAndBoundOptions, branch_and_bound
from .model import CompiledProblem, Model
from .presolve import presolve
from .result import SolverResult, SolverStatus
from .scipy_backend import solve_lp_scipy, solve_milp_scipy
from .simplex import solve_lp_simplex

__all__ = ["solve", "solve_compiled", "BACKENDS"]

BACKENDS = ("auto", "simplex", "simplex+cuts", "scipy", "bb-scipy")


def solve_compiled(
    problem: CompiledProblem,
    backend: str = "auto",
    use_presolve: bool = True,
    bb_options: BranchAndBoundOptions | None = None,
    **backend_kwargs,
) -> SolverResult:
    """Solve a compiled problem; see module docstring for backend names."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")

    if use_presolve:
        pre = presolve(problem)
        if pre.infeasible:
            return SolverResult(status=SolverStatus.INFEASIBLE, extra={"presolve": pre})
        problem = pre.problem

    is_mip = bool(problem.integrality.any())

    if backend == "auto":
        backend = "scipy"

    if backend == "scipy":
        if is_mip:
            return solve_milp_scipy(problem, **backend_kwargs)
        return solve_lp_scipy(problem, **backend_kwargs)

    if backend == "bb-scipy":
        if not is_mip:
            return solve_lp_scipy(problem, **backend_kwargs)
        return branch_and_bound(problem, solve_lp_scipy, options=bb_options)

    # pure-python stack
    if not is_mip:
        return solve_lp_simplex(problem)
    opts = bb_options or BranchAndBoundOptions()
    if backend == "simplex+cuts":
        opts = BranchAndBoundOptions(**{**opts.__dict__, "use_root_cuts": True})
    return branch_and_bound(problem, solve_lp_simplex, options=opts)


def solve(model: Model, backend: str = "auto", **kwargs) -> SolverResult:
    """Compile and solve a :class:`Model`.

    Returns a :class:`SolverResult`; read variable values back with
    ``result.value_of(var)``.
    """
    return solve_compiled(model.compile(), backend=backend, **kwargs)
