"""L-shaped (Benders) decomposition for two-stage stochastic programs.

The paper cites Benders decomposition [28] as one of the standard techniques
for solving the deterministic-equivalent SRRP.  This module implements the
multi-cut L-shaped method for problems of the form::

    min  c' x  +  sum_s p_s Q_s(x)
    s.t. A_ub x <= b_ub,  A_eq x == b_eq,  lb <= x <= ub,  (x possibly integer)

    Q_s(x) = min  q_s' y
             s.t. W_s y == h_s - T_s x,   0 <= y <= y_ub

First-stage integrality is handled by solving the master as a MILP each
iteration (the "integer L-shaped" simplification valid when only the master
carries integer variables and subproblems are LPs).

Subproblems are made *relatively complete* by elastic slacks: each recourse
row gets a pair of penalty columns at ``infeasibility_penalty``, so every
master trial point yields a bounded dual and a valid optimality cut; a
genuinely infeasible second stage surfaces as a huge recourse cost, which the
master then prices out.  This keeps the implementation free of Farkas-ray
extraction (which HiGHS does not expose through scipy).

Scenario subproblems are independent given the master trial point, so they
fan out through :func:`repro.parallel.parallel_map`
(``BendersOptions.n_workers``; the pool's nested-fork guard keeps service
workers serial) and, on the default ``subproblem_backend="simplex"``, each
scenario re-solves from its previous iteration's optimal basis — across
L-shaped iterations only the right-hand side ``h - T x`` moves, so the old
basis is typically dual feasible and a handful of dual-simplex pivots
replace a full two-phase solve (under the default revised engine the
exported basis also carries the factor-inverse hint, so the re-solve skips
refactorization too).  ``subproblem_backend="scipy"`` keeps the legacy
HiGHS path (no warm starts; duals read off marginals).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from .model import CompiledProblem
from .result import SolverResult, SolverStatus
from .interface import solve_compiled
from .simplex import solve_lp_simplex
from .telemetry import Deadline, Telemetry
from repro.parallel.pool import current_telemetry, default_workers, in_parallel_worker, parallel_map

__all__ = ["Scenario", "TwoStageProblem", "BendersOptions", "solve_benders", "extensive_form"]


@dataclass
class Scenario:
    """One second-stage realization.

    ``W y == h - T x`` with ``0 <= y <= y_ub`` and cost ``q' y``, weighted by
    probability ``prob`` in the objective.
    """

    prob: float
    q: np.ndarray
    W: np.ndarray
    T: np.ndarray
    h: np.ndarray
    y_ub: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.q = np.asarray(self.q, dtype=float)
        self.W = np.atleast_2d(np.asarray(self.W, dtype=float))
        self.T = np.atleast_2d(np.asarray(self.T, dtype=float))
        self.h = np.asarray(self.h, dtype=float)
        if self.W.shape[0] != self.h.shape[0] or self.T.shape[0] != self.h.shape[0]:
            raise ValueError("row mismatch between W/T/h")
        if self.q.shape[0] != self.W.shape[1]:
            raise ValueError("q length must match W columns")


@dataclass
class TwoStageProblem:
    """First-stage data plus the scenario list (probabilities must sum to 1)."""

    c: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    scenarios: list[Scenario]
    A_ub: np.ndarray | None = None
    b_ub: np.ndarray | None = None
    A_eq: np.ndarray | None = None
    b_eq: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.c = np.asarray(self.c, dtype=float)
        n = self.c.shape[0]
        self.lb = np.asarray(self.lb, dtype=float)
        self.ub = np.asarray(self.ub, dtype=float)
        self.integrality = np.asarray(self.integrality, dtype=int)
        self.A_ub = np.zeros((0, n)) if self.A_ub is None else np.atleast_2d(np.asarray(self.A_ub, float))
        self.b_ub = np.zeros(0) if self.b_ub is None else np.asarray(self.b_ub, float)
        self.A_eq = np.zeros((0, n)) if self.A_eq is None else np.atleast_2d(np.asarray(self.A_eq, float))
        self.b_eq = np.zeros(0) if self.b_eq is None else np.asarray(self.b_eq, float)
        total = sum(s.prob for s in self.scenarios)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"scenario probabilities sum to {total}, expected 1")

    @property
    def num_x(self) -> int:
        return self.c.shape[0]


@dataclass
class BendersOptions:
    """Knobs for :func:`solve_benders`.

    ``n_workers`` controls the scenario fan-out: ``1`` (default) solves
    subproblems in-process, ``None`` asks :func:`repro.parallel.default_workers`,
    any other value is used as given (clamped to the scenario count by the
    pool).  ``subproblem_backend`` is ``"simplex"`` (bounded-variable
    simplex with per-scenario basis warm starts) or ``"scipy"`` (legacy
    HiGHS, cold every iteration).
    """

    max_iterations: int = 200
    tolerance: float = 1e-6
    infeasibility_penalty: float = 1e6
    verbose: bool = False
    time_limit: float = math.inf
    n_workers: int | None = 1
    subproblem_backend: str = "simplex"


@dataclass
class _SubSolve:
    value: float
    dual: np.ndarray
    y: np.ndarray
    mu: np.ndarray        # upper-bound duals of the y columns (>= 0)
    bound_term: float     # mu @ y_ub over the finite bounds


def _solve_subproblem(s: Scenario, x: np.ndarray, penalty: float) -> _SubSolve:
    """Elastic recourse LP: min q'y + penalty·(u+v) s.t. W y + u - v == h - T x."""
    try:
        from scipy import optimize as sciopt
    except ImportError as exc:  # pragma: no cover - exercised in scipy-less CI
        raise ImportError(
            "solve_benders subproblems require scipy (dual multipliers are "
            "read off HiGHS); install scipy or solve the extensive form with "
            "backend='simplex'"
        ) from exc
    m, ny = s.W.shape
    rhs = s.h - s.T @ x
    A_eq = np.hstack([s.W, np.eye(m), -np.eye(m)])
    cost = np.concatenate([s.q, np.full(2 * m, penalty)])
    if s.y_ub is None:
        bounds = [(0, None)] * (ny + 2 * m)
    else:
        bounds = [(0, float(u) if np.isfinite(u) else None) for u in s.y_ub] + [(0, None)] * (2 * m)
    res = sciopt.linprog(cost, A_eq=A_eq, b_eq=rhs, bounds=bounds, method="highs")
    if res.status != 0:
        raise RuntimeError(f"elastic subproblem unsolved (status {res.status}): {res.message}")
    dual = np.asarray(res.eqlin.marginals, dtype=float)
    # Finite y upper bounds contribute their own dual term: the recourse dual
    # is max dual'rhs - mu'u s.t. dual'W - mu <= q, mu >= 0, so an optimality
    # cut built from `dual` alone would overshoot whenever a bound binds.
    mu = np.zeros(ny)
    if s.y_ub is not None:
        upper = getattr(res, "upper", None)
        marg = None if upper is None else getattr(upper, "marginals", None)
        if marg is not None:
            mu = np.maximum(-np.asarray(marg, dtype=float)[:ny], 0.0)
    finite = s.y_ub is not None and np.isfinite(np.asarray(s.y_ub, dtype=float))
    bound_term = float(mu[finite] @ np.asarray(s.y_ub, dtype=float)[finite]) if s.y_ub is not None else 0.0
    return _SubSolve(value=float(res.fun), dual=dual, y=np.asarray(res.x[:ny]),
                     mu=mu, bound_term=bound_term)


def _subproblem_lp(s: Scenario, x: np.ndarray, penalty: float) -> CompiledProblem:
    """The elastic recourse LP as a compiled problem (columns: y, u, v)."""
    m, ny = s.W.shape
    nt = ny + 2 * m
    ub = np.concatenate([
        np.full(ny, np.inf) if s.y_ub is None else np.asarray(s.y_ub, dtype=float),
        np.full(2 * m, np.inf),
    ])
    return CompiledProblem(
        c=np.concatenate([s.q, np.full(2 * m, penalty)]), c0=0.0,
        A_ub=np.zeros((0, nt)), b_ub=np.zeros(0),
        A_eq=np.hstack([s.W, np.eye(m), -np.eye(m)]), b_eq=s.h - s.T @ x,
        lb=np.zeros(nt), ub=ub, integrality=np.zeros(nt, dtype=int),
        maximize=False, variables=[],
    )


def _solve_subproblem_simplex(
    s: Scenario,
    x: np.ndarray,
    penalty: float,
    deadline: Deadline | None = None,
    warm=None,
    telemetry: Telemetry | None = None,
):
    """Elastic recourse via the bounded-variable simplex.

    Returns ``(_SubSolve, basis, warm_used)`` — the optimal basis seeds the
    same scenario's solve in the next L-shaped iteration — or ``None`` when
    the shared deadline expired mid-solve.
    """
    prob = _subproblem_lp(s, x, penalty)
    res = solve_lp_simplex(prob, deadline=deadline, warm_start=warm, telemetry=telemetry)
    if res.status is not SolverStatus.OPTIMAL and warm is not None:
        res = solve_lp_simplex(prob, deadline=deadline, telemetry=telemetry)
    if res.status is SolverStatus.TIME_LIMIT:
        return None
    cert = res.extra.get("dual_certificate") if res.status is SolverStatus.OPTIMAL else None
    if cert is None:
        raise RuntimeError(
            f"elastic subproblem unsolved by simplex (status {res.status.value}); "
            "try BendersOptions(subproblem_backend='scipy')"
        )
    m, ny = s.W.shape
    # The certificate convention is r = c + A_eq' y_eq (see repro.verify),
    # so the classic recourse dual with value = dual'(h - Tx) - mu'y_ub is
    # the negated multiplier, and mu = max(0, -r) on the y columns.
    y_eq = np.asarray(cert["y_eq"], dtype=float)
    dual = -y_eq
    reduced = prob.c[:ny] + s.W.T @ y_eq
    mu = np.maximum(-reduced, 0.0)
    if s.y_ub is None:
        mu = np.zeros(ny)
        bound_term = 0.0
    else:
        u = np.asarray(s.y_ub, dtype=float)
        finite = np.isfinite(u)
        mu = np.where(finite, mu, 0.0)
        bound_term = float(mu[finite] @ u[finite])
    winfo = res.extra.get("warm") or {}
    sub = _SubSolve(
        value=float(res.objective), dual=dual, y=np.asarray(res.x[:ny]),
        mu=mu, bound_term=bound_term,
    )
    return sub, res.extra.get("basis"), bool(winfo.get("used"))


def _sub_task(item):
    """Picklable per-scenario task for :func:`repro.parallel.parallel_map`.

    ``item`` is ``(scenario, x, penalty, remaining_seconds, warm_basis,
    backend)``; the deadline is re-materialized from the remaining budget so
    the tuple survives the process boundary.  Returns ``(sub, basis,
    warm_used, elapsed_seconds)`` — the in-worker solve time measured here,
    where it is real compute rather than fan-out overhead — or ``None``
    when the deadline expired inside the solve.
    """
    s, x, penalty, remaining, warm, backend = item
    t0 = perf_counter()
    if backend == "scipy":
        return _solve_subproblem(s, x, penalty), None, False, perf_counter() - t0
    dl = Deadline(max(0.0, remaining)) if math.isfinite(remaining) else None
    out = _solve_subproblem_simplex(
        s, x, penalty, deadline=dl, warm=warm, telemetry=current_telemetry()
    )
    if out is None:
        return None
    sub, basis, warm_used = out
    return sub, basis, warm_used, perf_counter() - t0


def _master_problem(p: TwoStageProblem, theta_lb: float) -> CompiledProblem:
    """Compiled master with one theta column per scenario appended after x."""
    n, S = p.num_x, len(p.scenarios)
    c = np.concatenate([p.c, np.ones(S)])  # thetas carry p_s inside the cuts
    lb = np.concatenate([p.lb, np.full(S, theta_lb)])
    ub = np.concatenate([p.ub, np.full(S, np.inf)])
    integrality = np.concatenate([p.integrality, np.zeros(S, dtype=int)])
    A_ub = np.hstack([p.A_ub, np.zeros((p.A_ub.shape[0], S))]) if p.A_ub.size else np.zeros((0, n + S))
    A_eq = np.hstack([p.A_eq, np.zeros((p.A_eq.shape[0], S))]) if p.A_eq.size else np.zeros((0, n + S))
    return CompiledProblem(
        c=c, c0=0.0, A_ub=A_ub, b_ub=p.b_ub.copy(), A_eq=A_eq, b_eq=p.b_eq.copy(),
        lb=lb, ub=ub, integrality=integrality, maximize=False, variables=[],
    )


def solve_benders(
    problem: TwoStageProblem,
    options: BendersOptions | None = None,
    backend: str = "scipy",
    deadline: Deadline | None = None,
    listener=None,
) -> SolverResult:
    """Run the multi-cut L-shaped loop until the master/recourse gap closes.

    Returns a :class:`SolverResult` whose ``x`` is the first-stage solution
    and ``extra`` carries per-scenario recourse values, cut counts, and the
    iteration trace (useful for the decomposition ablation bench).

    The shared ``deadline`` (or ``options.time_limit``) is polled at the
    top of every master iteration and threaded into the master MILP solve;
    on expiry the best first-stage incumbent is returned with status
    ``FEASIBLE`` (``TIME_LIMIT`` when no iteration completed).  Each
    iteration emits a ``benders_iteration`` telemetry event.
    """
    opts = options or BendersOptions()
    telemetry = Telemetry.from_listener(listener)
    dl = Deadline(opts.time_limit) if deadline is None else deadline.tightened(opts.time_limit)
    S = len(problem.scenarios)
    n = problem.num_x

    # theta lower bound: crude but safe bound on p_s * Q_s
    theta_lb = -opts.infeasibility_penalty
    master = _master_problem(problem, theta_lb)
    cuts_rows: list[np.ndarray] = []
    cuts_rhs: list[float] = []
    cut_records: list[dict] = []  # scenario + dual vector per cut, for audits
    trace: list[dict] = []

    best_upper = math.inf
    best_x: np.ndarray | None = None
    best_recourse: list[float] = []
    sub_bases: list = [None] * S  # per-scenario warm-start basis, across iterations
    warm_hits_total = 0

    requested_workers = opts.n_workers if opts.n_workers is not None else default_workers()
    eff_workers = min(max(1, requested_workers), S)
    if eff_workers > 1 and in_parallel_worker():
        eff_workers = 1  # the pool would refuse to fork again anyway

    from dataclasses import replace as dc_replace

    def out_of_time(it: int) -> SolverResult:
        if telemetry:
            telemetry.emit("deadline_exceeded", where="benders", iterations=it)
        if best_x is not None:
            return SolverResult(
                status=SolverStatus.FEASIBLE, x=best_x, objective=best_upper,
                nodes=it,
                extra={"recourse_values": best_recourse, "cuts": len(cuts_rows), "cut_records": cut_records,
                       "penalty": opts.infeasibility_penalty, "trace": trace,
                       "subproblem_warm_hits": warm_hits_total, "workers": eff_workers},
            )
        return SolverResult(status=SolverStatus.TIME_LIMIT, nodes=it, extra={"trace": trace})

    for it in range(opts.max_iterations):
        if dl.expired():
            return out_of_time(it)
        if cuts_rows:
            A_ub = np.vstack([master.A_ub] + [np.asarray(cuts_rows)])
            b_ub = np.concatenate([master.b_ub, np.asarray(cuts_rhs)])
        else:
            A_ub, b_ub = master.A_ub, master.b_ub
        m_iter = dc_replace(master, A_ub=A_ub, b_ub=b_ub)
        # Threading the hub into the master solve nests its solve_start /
        # phase events under the Benders loop in reconstructed span trees.
        res = solve_compiled(
            m_iter, backend=backend, use_presolve=False, deadline=dl, listener=telemetry
        )
        if res.status is SolverStatus.TIME_LIMIT:
            return out_of_time(it)
        if res.status is SolverStatus.INFEASIBLE:
            return SolverResult(status=SolverStatus.INFEASIBLE, nodes=it)
        if not res.status.has_solution:
            return SolverResult(status=res.status, nodes=it)
        x = res.x[:n]
        thetas = res.x[n:]
        lower = float(problem.c @ x + thetas.sum())

        items = [
            (s, x, opts.infeasibility_penalty, dl.remaining(), sub_bases[si],
             opts.subproblem_backend)
            for si, s in enumerate(problem.scenarios)
        ]
        if telemetry:
            with telemetry.phase(
                "benders_subproblems", scenarios=S, iteration=it, workers=eff_workers
            ) as sub_info:
                outs = parallel_map(_sub_task, items, n_workers=eff_workers, telemetry=telemetry)
                # Summed in-worker solve seconds: the profiler splits this
                # phase into subproblem compute vs fan-out/IPC overhead.
                sub_info["subproblem_s"] = float(
                    sum(o[3] for o in outs if o is not None)
                )
        else:
            outs = parallel_map(_sub_task, items, n_workers=eff_workers)
        if any(o is None for o in outs):
            return out_of_time(it)
        subs = [o[0] for o in outs]
        sub_bases = [new if new is not None else old for (_, new, _, _), old in zip(outs, sub_bases)]
        warm_count = sum(1 for o in outs if o[2])
        warm_hits_total += warm_count
        if telemetry and eff_workers > 1:
            telemetry.emit(
                "benders_parallel", iteration=it, scenarios=S,
                workers=eff_workers, warm_hits=warm_count,
            )
        true_recourse = np.array([s.prob for s in problem.scenarios]) * np.array([sb.value for sb in subs])
        upper = float(problem.c @ x + true_recourse.sum())
        if upper < best_upper - 1e-12:
            best_upper = upper
            best_x = x.copy()
            best_recourse = [sb.value for sb in subs]
        gap = best_upper - lower
        trace.append({"iteration": it, "lower": lower, "upper": best_upper, "cuts": len(cuts_rows)})
        if telemetry:
            telemetry.emit(
                "benders_iteration",
                iteration=it, lower=lower, upper=best_upper,
                gap=gap, cuts=len(cuts_rows),
            )
        if opts.verbose:
            print(f"[benders] it={it} lower={lower:.6f} upper={best_upper:.6f} cuts={len(cuts_rows)}")
        # `lower` is only a valid global bound when the master solved to
        # optimality — a deadline-truncated FEASIBLE master must not let the
        # gap test declare a false OPTIMAL.
        if res.status is SolverStatus.OPTIMAL and gap <= opts.tolerance * max(1.0, abs(best_upper)):
            return SolverResult(
                status=SolverStatus.OPTIMAL, x=best_x, objective=best_upper, bound=lower,
                nodes=it + 1,
                extra={"recourse_values": best_recourse, "cuts": len(cuts_rows), "cut_records": cut_records,
                       "penalty": opts.infeasibility_penalty, "trace": trace,
                       "subproblem_warm_hits": warm_hits_total, "workers": eff_workers},
            )

        # add violated optimality cuts: theta_s >= p_s (dual'(h_s - T_s x) - mu'u)
        added = 0
        for si, (s, sb) in enumerate(zip(problem.scenarios, subs)):
            cut_const = s.prob * float(sb.dual @ s.h - sb.bound_term)
            cut_coefx = s.prob * (sb.dual @ s.T)  # theta_s >= cut_const - cut_coefx @ x
            if thetas[si] < s.prob * sb.value - 1e-9 * max(1.0, abs(sb.value)):
                row = np.zeros(n + S)
                row[:n] = -cut_coefx
                row[n + si] = -1.0
                # -cut_coefx @ x - theta_s <= -cut_const
                cuts_rows.append(row)
                cuts_rhs.append(-cut_const)
                cut_records.append(
                    {"scenario": si, "iteration": it,
                     "dual": sb.dual.copy(), "mu": sb.mu.copy()}
                )
                added += 1
        if added == 0:
            # numerically converged without closing the reported gap
            return SolverResult(
                status=SolverStatus.OPTIMAL, x=best_x, objective=best_upper, bound=lower,
                nodes=it + 1,
                extra={"recourse_values": best_recourse, "cuts": len(cuts_rows), "cut_records": cut_records,
                       "penalty": opts.infeasibility_penalty, "trace": trace,
                       "subproblem_warm_hits": warm_hits_total, "workers": eff_workers},
            )

    return SolverResult(
        status=SolverStatus.ITERATION_LIMIT, x=best_x,
        objective=best_upper if best_x is not None else math.nan,
        nodes=opts.max_iterations,
        extra={"cuts": len(cuts_rows), "cut_records": cut_records,
                       "penalty": opts.infeasibility_penalty, "trace": trace,
                       "subproblem_warm_hits": warm_hits_total, "workers": eff_workers},
    )


def extensive_form(problem: TwoStageProblem) -> CompiledProblem:
    """Build the deterministic-equivalent (extensive form) MILP directly.

    Used to validate the decomposition: ``solve_compiled(extensive_form(p))``
    and :func:`solve_benders` must agree on the optimum.
    """
    n = problem.num_x
    ny = [s.q.shape[0] for s in problem.scenarios]
    total_y = sum(ny)
    N = n + total_y

    c = np.concatenate([problem.c] + [s.prob * s.q for s in problem.scenarios])
    lb = np.concatenate([problem.lb] + [np.zeros(k) for k in ny])
    ub_parts = [problem.ub]
    for s in problem.scenarios:
        ub_parts.append(np.full(s.q.shape[0], np.inf) if s.y_ub is None else np.asarray(s.y_ub, float))
    ub = np.concatenate(ub_parts)
    integrality = np.concatenate([problem.integrality, np.zeros(total_y, dtype=int)])

    A_ub = np.hstack([problem.A_ub, np.zeros((problem.A_ub.shape[0], total_y))]) if problem.A_ub.size else np.zeros((0, N))
    rows = []
    rhs = []
    offset = n
    for s in problem.scenarios:
        m = s.h.shape[0]
        block = np.zeros((m, N))
        block[:, :n] = s.T
        block[:, offset : offset + s.q.shape[0]] = s.W
        rows.append(block)
        rhs.append(s.h)
        offset += s.q.shape[0]
    A_eq_sc = np.vstack(rows) if rows else np.zeros((0, N))
    b_eq_sc = np.concatenate(rhs) if rhs else np.zeros(0)
    if problem.A_eq.size:
        A_eq = np.vstack([np.hstack([problem.A_eq, np.zeros((problem.A_eq.shape[0], total_y))]), A_eq_sc])
        b_eq = np.concatenate([problem.b_eq, b_eq_sc])
    else:
        A_eq, b_eq = A_eq_sc, b_eq_sc

    return CompiledProblem(
        c=c, c0=0.0, A_ub=A_ub, b_ub=problem.b_ub.copy(), A_eq=A_eq, b_eq=b_eq,
        lb=lb, ub=ub, integrality=integrality, maximize=False, variables=[],
    )
