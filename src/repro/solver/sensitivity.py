"""LP sensitivity: dual values and reduced costs.

Post-optimality analysis for the planning models — e.g. the marginal cost
of one more GB of demand in slot t (the dual of that slot's inventory
balance row once the rental pattern is fixed).  Duals come from the HiGHS
backend's marginals; the report is backend-agnostic data.

Sign conventions follow ``scipy.optimize.linprog``: for a minimization,
``duals_eq[i]`` is ∂objective/∂b_eq[i], ``duals_ub[i]`` ≤ 0 is
∂objective/∂b_ub[i], and ``reduced_costs[j]`` is the objective change per
unit increase of variable j away from its active bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .model import CompiledProblem

__all__ = ["SensitivityReport", "lp_sensitivity"]


@dataclass(frozen=True)
class SensitivityReport:
    """Primal/dual optimum of an LP.

    Attributes
    ----------
    x / objective:
        The primal solution.
    duals_eq / duals_ub:
        Marginals of the equality / inequality rows.
    reduced_costs:
        Combined bound marginals per variable (lower + upper).
    """

    x: np.ndarray
    objective: float
    duals_eq: np.ndarray
    duals_ub: np.ndarray
    reduced_costs: np.ndarray

    def binding_ub_rows(self, tol: float = 1e-9) -> np.ndarray:
        """Indices of inequality rows with nonzero shadow price."""
        return np.nonzero(np.abs(self.duals_ub) > tol)[0]


def lp_sensitivity(problem: CompiledProblem) -> SensitivityReport:
    """Solve the LP (integrality ignored) and return primal+dual information.

    Raises
    ------
    RuntimeError
        If the LP is not solved to optimality (duals undefined).
    ImportError
        If scipy is not installed (duals come from HiGHS marginals).
    """
    from .scipy_backend import _require_scipy, sciopt

    _require_scipy("lp_sensitivity")
    res = sciopt.linprog(
        c=problem.c,
        A_ub=problem.A_ub if problem.A_ub.size else None,
        b_ub=problem.b_ub if problem.b_ub.size else None,
        A_eq=problem.A_eq if problem.A_eq.size else None,
        b_eq=problem.b_eq if problem.b_eq.size else None,
        bounds=[
            (lb if np.isfinite(lb) else None, ub if np.isfinite(ub) else None)
            for lb, ub in zip(problem.lb, problem.ub)
        ],
        method="highs",
    )
    if res.status != 0:
        raise RuntimeError(f"LP not optimal (status {res.status}): {res.message}")
    duals_eq = np.asarray(res.eqlin.marginals, dtype=float) if problem.A_eq.size else np.zeros(0)
    duals_ub = np.asarray(res.ineqlin.marginals, dtype=float) if problem.A_ub.size else np.zeros(0)
    reduced = np.asarray(res.lower.marginals, dtype=float) + np.asarray(
        res.upper.marginals, dtype=float
    )
    x = np.asarray(res.x, dtype=float)
    objective = problem.objective_value(x)
    if problem.maximize:
        duals_eq, duals_ub, reduced = -duals_eq, -duals_ub, -reduced
    return SensitivityReport(
        x=x, objective=objective,
        duals_eq=duals_eq, duals_ub=duals_ub, reduced_costs=reduced,
    )
