"""HiGHS-backed LP/MILP solving via :mod:`scipy.optimize`.

The pure-Python simplex (:mod:`repro.solver.simplex`) is the from-scratch
reference implementation; this module provides the fast path used by default
for large scenario-tree MILPs.  Both speak the same
:class:`~repro.solver.model.CompiledProblem` / :class:`~repro.solver.result.SolverResult`
interface, and the test suite cross-checks them against each other.

SciPy is an *optional* dependency of the solver stack: this module imports
without it, :func:`scipy_available` reports whether the fast path exists,
and ``backend="auto"`` (see :mod:`repro.solver.interface`) degrades to the
pure-Python stack when it does not.  Calling either solve function without
SciPy raises a descriptive :class:`ImportError`.
"""

from __future__ import annotations

import math

import numpy as np

try:  # pragma: no cover - exercised by the scipy-less CI job
    from scipy import optimize as sciopt

    _SCIPY_IMPORT_ERROR: Exception | None = None
except ImportError as exc:  # pragma: no cover
    sciopt = None
    _SCIPY_IMPORT_ERROR = exc

from .model import CompiledProblem
from .result import SolverResult, SolverStatus
from .telemetry import Deadline, Telemetry

__all__ = ["scipy_available", "solve_lp_scipy", "solve_milp_scipy"]

_STATUS_FROM_LINPROG = {
    0: SolverStatus.OPTIMAL,
    1: SolverStatus.ITERATION_LIMIT,
    2: SolverStatus.INFEASIBLE,
    3: SolverStatus.UNBOUNDED,
    4: SolverStatus.ERROR,
}


def scipy_available() -> bool:
    """True when :mod:`scipy.optimize` imported successfully."""
    return sciopt is not None


def _require_scipy(caller: str) -> None:
    if sciopt is None:
        raise ImportError(
            f"{caller} requires scipy, which is not installed; use "
            "backend='auto' (falls back to the pure-Python simplex stack) "
            "or backend='simplex'"
        ) from _SCIPY_IMPORT_ERROR


def _bounds(problem: CompiledProblem) -> list[tuple[float | None, float | None]]:
    return [
        (lb if np.isfinite(lb) else None, ub if np.isfinite(ub) else None)
        for lb, ub in zip(problem.lb, problem.ub)
    ]


def _finish(problem: CompiledProblem, status: SolverStatus, x, iterations: int = 0, nodes: int = 0, bound=None, extra=None) -> SolverResult:
    if status.has_solution and x is not None:
        x = np.asarray(x, dtype=float)
        obj = problem.objective_value(x)
        b = obj if bound is None else (-bound if problem.maximize else bound)
        return SolverResult(
            status=status, x=x, objective=obj, bound=b,
            iterations=iterations, nodes=nodes, extra=extra or {},
        )
    return SolverResult(status=status, iterations=iterations, nodes=nodes, extra=extra or {})


def _dual_certificate_from_linprog(problem: CompiledProblem, res) -> dict[str, np.ndarray] | None:
    """Map HiGHS marginals to the checker's dual convention.

    ``linprog`` marginals are the sensitivities d(opt)/d(rhs); for a
    minimization with ``A_ub x <= b_ub`` they are nonpositive and relate to
    the checker's nonnegative multipliers by a sign flip (``y = -marginal``).
    Bound multipliers are re-derived by the checker from the reduced costs.
    """
    ineq = getattr(res, "ineqlin", None)
    eq = getattr(res, "eqlin", None)
    m_ub, m_eq = problem.A_ub.shape[0], problem.A_eq.shape[0]
    y_ub = np.zeros(m_ub)
    y_eq = np.zeros(m_eq)
    if m_ub:
        marg = getattr(ineq, "marginals", None)
        if marg is None or len(marg) != m_ub:
            return None
        y_ub = -np.asarray(marg, dtype=float)
    if m_eq:
        marg = getattr(eq, "marginals", None)
        if marg is None or len(marg) != m_eq:
            return None
        y_eq = -np.asarray(marg, dtype=float)
    return {"y_ub": y_ub, "y_eq": y_eq}


def solve_lp_scipy(
    problem: CompiledProblem,
    deadline: Deadline | None = None,
    telemetry: Telemetry | None = None,
    **kwargs,
) -> SolverResult:
    """Solve the LP relaxation with ``scipy.optimize.linprog(method='highs')``.

    A :class:`~repro.solver.telemetry.Deadline` maps onto HiGHS's own
    ``time_limit`` option so even a single LP respects the shared budget.
    """
    _require_scipy("solve_lp_scipy")
    options = dict(kwargs.pop("options", {}) or {})
    if deadline is not None and math.isfinite(deadline.remaining()):
        if deadline.expired():
            if telemetry:
                telemetry.emit("deadline_exceeded", where="solve_lp_scipy")
            return SolverResult(status=SolverStatus.TIME_LIMIT)
        options.setdefault("time_limit", max(deadline.remaining(), 1e-3))
    def run():
        return sciopt.linprog(
            c=problem.c,
            A_ub=problem.A_ub if problem.A_ub.size else None,
            b_ub=problem.b_ub if problem.b_ub.size else None,
            A_eq=problem.A_eq if problem.A_eq.size else None,
            b_eq=problem.b_eq if problem.b_eq.size else None,
            bounds=_bounds(problem),
            method="highs",
            options=options or None,
            **kwargs,
        )

    if telemetry:
        with telemetry.phase(
            "highs_lp", rows=problem.num_constraints, cols=problem.num_vars
        ) as info:
            res = run()
            info["pivots"] = int(getattr(res, "nit", 0) or 0)
    else:
        res = run()
    status = _STATUS_FROM_LINPROG.get(res.status, SolverStatus.ERROR)
    iters = int(getattr(res, "nit", 0) or 0)
    if status is SolverStatus.ITERATION_LIMIT and deadline is not None and deadline.expired():
        status = SolverStatus.TIME_LIMIT  # HiGHS reports its time limit as status 1
    extra = None
    if status is SolverStatus.OPTIMAL and res.success:
        cert = _dual_certificate_from_linprog(problem, res)
        if cert is not None:
            extra = {"dual_certificate": cert}
    return _finish(problem, status, res.x if res.success else None, iterations=iters, extra=extra)


def solve_milp_scipy(
    problem: CompiledProblem,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
    deadline: Deadline | None = None,
    telemetry: Telemetry | None = None,
) -> SolverResult:
    """Solve the MILP with ``scipy.optimize.milp`` (HiGHS branch-and-cut)."""
    _require_scipy("solve_milp_scipy")
    if deadline is not None and math.isfinite(deadline.remaining()):
        if deadline.expired():
            if telemetry:
                telemetry.emit("deadline_exceeded", where="solve_milp_scipy")
            return SolverResult(status=SolverStatus.TIME_LIMIT)
        remaining = max(deadline.remaining(), 1e-3)
        time_limit = remaining if time_limit is None else min(time_limit, remaining)
    constraints = []
    if problem.A_ub.size:
        constraints.append(
            sciopt.LinearConstraint(problem.A_ub, -np.inf, problem.b_ub)
        )
    if problem.A_eq.size:
        constraints.append(
            sciopt.LinearConstraint(problem.A_eq, problem.b_eq, problem.b_eq)
        )
    options = {}
    if time_limit is not None:
        options["time_limit"] = time_limit
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = mip_rel_gap
    def run():
        return sciopt.milp(
            c=problem.c,
            constraints=constraints or None,
            integrality=problem.integrality,
            bounds=sciopt.Bounds(problem.lb, problem.ub),
            options=options or None,
        )

    if telemetry:
        with telemetry.phase(
            "highs_milp", rows=problem.num_constraints, cols=problem.num_vars
        ) as info:
            res = run()
            info["nodes"] = int(getattr(res, "mip_node_count", 0) or 0)
    else:
        res = run()
    if res.status == 0:
        status = SolverStatus.OPTIMAL
    elif res.status == 2:
        status = SolverStatus.INFEASIBLE
    elif res.status == 3:
        status = SolverStatus.UNBOUNDED
    elif res.status == 1 and res.x is not None:
        status = SolverStatus.FEASIBLE  # stopped at a limit with incumbent
    elif res.status == 1:
        status = SolverStatus.TIME_LIMIT
    else:
        status = SolverStatus.ERROR
    bound = getattr(res, "mip_dual_bound", None)
    nodes = int(getattr(res, "mip_node_count", 0) or 0)
    if telemetry and status.has_solution:
        telemetry.emit(
            "incumbent",
            objective=problem.objective_value(np.asarray(res.x, dtype=float)),
            source="highs",
        )
    return _finish(problem, status, res.x, nodes=nodes, bound=bound)
