"""Two-phase dense tableau simplex with native variable bounds.

This is the from-scratch LP engine standing in for the commercial solver the
paper used.  It works on the :class:`~repro.solver.model.CompiledProblem`
matrix form, converting general bounds and inequality rows to the
computational *bounded* standard form

    min c' x   s.t.  A x = b,  0 <= x <= u

via lower-bound shifting, upper-bound mirroring (``lb = -inf`` with finite
``ub``), free-variable splitting, and slack columns.  Finite upper bounds are
handled **natively in the pivot rules** (bounded-variable simplex): a
nonbasic variable may sit at either of its bounds, and the ratio test allows
three outcomes — a basic variable drops to zero, a basic variable hits its
own upper bound, or the entering variable flips to its opposite bound without
any basis change.  Compared to the earlier formulation that emitted one
``ROW_BOUND`` row plus a slack column per bounded variable, this roughly
halves the tableau in both dimensions on DRRP instances (every setup binary
used to cost a row and a column).

Dantzig pricing is used by default with a switch to Bland's rule after a
stall is detected, which guarantees termination on degenerate problems.

The tableau is kept as one contiguous ``(m+1, n+1)`` numpy array and pivots
are rank-1 updates (vectorized row elimination) — the profiling-first idiom
from the HPC guides: the hot loop does O(m·n) numpy work per pivot and no
Python-level iteration over matrix entries.

Warm starts
-----------

An ``OPTIMAL`` :func:`solve_lp_simplex` result exports its final basis as a
:class:`SimplexBasis` (``result.extra["basis"]``): the basic column set, the
at-upper flags of the nonbasic columns, and the surviving row set, plus the
layout fingerprint needed to check that a later problem standardizes into
the same column space.  Passing it back via ``warm_start=`` re-solves a
*bound-modified* problem (the branch-and-bound child case, the Benders
next-iteration case) without phase 1:

* refactorize the basis on the new right-hand side;
* if the basic point is primal feasible, run primal phase 2 directly;
* if it is primal infeasible but dual feasible (the common case after a
  bound tightening), repair with the bounded **dual simplex** and polish
  with a primal pass;
* anything else — singular basis, layout change, dual infeasibility, a
  stalled repair — falls back to a cold two-phase solve, never to a wrong
  answer.  ``result.extra["warm"]`` records which path ran.

The final tableau and basis are exposed (:class:`SimplexTableau`) because the
Gomory cut generator in :mod:`repro.solver.cuts` reads fractional rows off
the optimal tableau.

Engines
-------

Two pivot engines share this module's public contract:

``"revised"`` (default)
    The factored revised simplex in :mod:`repro.solver.revised` — LU basis
    with collapsed product-form eta updates, Devex pricing, O(m^2 + n)
    pivots, lazy tableau materialization.  This is the production engine.
``"tableau"``
    The dense full-tableau loop kept in this module — O(m*n) pivots.  Kept
    for one release as the differential oracle and escape hatch.

Selection: the ``engine=`` keyword of :func:`solve_lp_simplex` wins,
otherwise the ``REPRO_SIMPLEX`` environment variable (``revised`` |
``tableau``), otherwise ``revised``.  Both engines produce and accept the
same :class:`SimplexBasis` warm starts and export identical certificate
conventions; ``result.extra["engine"]`` records which one ran.
"""

from __future__ import annotations

import math
import os
import warnings
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from .model import CompiledProblem
from .result import SolverResult, SolverStatus
from .revised import NumericalTrouble, revised_solve, warm_solve_revised
from .telemetry import Deadline, Telemetry

__all__ = [
    "StandardForm",
    "SimplexTableau",
    "SimplexBasis",
    "SIMPLEX_ENGINES",
    "resolve_engine",
    "standardize",
    "simplex_solve",
    "solve_lp_simplex",
]

_EPS = 1e-9
#: Primal feasibility tolerance used when accepting a warm basis.
_FEAS_TOL = 1e-7


ROW_UB, ROW_EQ = 0, 1

#: Pivot engines sharing the :func:`solve_lp_simplex` contract.
SIMPLEX_ENGINES = ("revised", "tableau")


def resolve_engine(engine: str | None = None) -> str:
    """Resolve the pivot engine: explicit arg > ``REPRO_SIMPLEX`` > revised.

    Unknown names warn (``RuntimeWarning``) and fall back to the default
    rather than erroring, so a stale environment variable cannot take the
    solver down.
    """
    if engine is None:
        engine = os.environ.get("REPRO_SIMPLEX", "").strip().lower() or "revised"
    else:
        engine = engine.strip().lower()
    if engine not in SIMPLEX_ENGINES:
        warnings.warn(
            f"unknown simplex engine {engine!r} (check REPRO_SIMPLEX); "
            f"expected one of {SIMPLEX_ENGINES}, using 'revised'",
            RuntimeWarning,
            stacklevel=3,
        )
        engine = "revised"
    return engine


@dataclass
class StandardForm:
    """Standard-form data plus the bookkeeping to map solutions back.

    ``x_original[j] = shift[j] + sign[j] * x_std[pos[j]] - (x_std[neg[j]] if
    split)`` where ``pos``/``neg`` give the standard-form columns of each
    original variable (``neg[j] < 0`` when the variable was not split) and
    ``sign[j] = -1`` marks mirrored variables (``lb = -inf`` with finite
    ``ub``, substituted as ``x = ub - x'``).

    ``u`` holds the native upper bound of every standard-form column
    (``inf`` where unbounded); there are no bound rows.

    ``row_kind``/``row_ref``/``row_sign`` record, for every standard-form
    row, which original constraint it came from (``ROW_UB``/``ROW_EQ`` with
    the original row index) and whether the row was negated for phase 1.
    This is what lets dual vectors computed on the standard form be mapped
    back to multipliers of the *original* ``A_ub``/``A_eq`` rows for
    certificate checking.
    """

    A: np.ndarray
    b: np.ndarray
    c: np.ndarray
    u: np.ndarray
    shift: np.ndarray
    pos: np.ndarray
    neg: np.ndarray
    sign: np.ndarray
    n_structural: int  # columns that correspond to original variables
    row_kind: np.ndarray | None = None
    row_ref: np.ndarray | None = None
    row_sign: np.ndarray | None = None

    def recover(self, x_std: np.ndarray) -> np.ndarray:
        x = self.shift + self.sign * x_std[self.pos]
        split = self.neg >= 0
        if split.any():
            x[split] -= x_std[self.neg[split]]
        return x

    def map_row_duals(self, y_std: np.ndarray, m_ub: int, m_eq: int) -> dict[str, np.ndarray]:
        """Translate standard-form row multipliers to original-row ones.

        For a standard row built as ``sign * (original equation)``, the
        multiplier on the original equation is ``sign * y_std``; the
        original-space convention used by :mod:`repro.verify.certify`
        (``y_ub >= 0`` entering the reduced costs as ``c + A_ub' y_ub``)
        flips the sign once more.  Column upper-bound multipliers are never
        exported — the checker re-derives optimal bound multipliers from
        the reduced costs, which can only improve the certified bound.
        """
        y_row = -self.row_sign * y_std
        y_ub = np.zeros(m_ub)
        y_eq = np.zeros(m_eq)
        ub_rows = self.row_kind == ROW_UB
        eq_rows = self.row_kind == ROW_EQ
        # Every original row maps to exactly one standard row, so plain
        # fancy assignment (no accumulation) is correct here.
        y_ub[self.row_ref[ub_rows]] = y_row[ub_rows]
        y_eq[self.row_ref[eq_rows]] = y_row[eq_rows]
        return {"y_ub": y_ub, "y_eq": y_eq}


def standardize(problem: CompiledProblem) -> StandardForm:
    """Convert a compiled problem to bounded standard form ``0 <= x <= u``.

    Handling per variable:

    * finite lb: substitute ``x = lb + x'`` (shift); ``u = ub - lb``.
    * ``lb = -inf``, finite ub: mirror ``x = ub - x'`` (``sign = -1``).
    * free both ways: split ``x = x+ - x-``.

    Inequality rows gain slack columns.  Rows with negative rhs are negated
    so phase 1 can start from ``b >= 0``.  Finite upper bounds become native
    column bounds — no extra rows.

    The whole conversion is vectorized column-scatter assembly (no
    Python-level loop over matrix entries): column positions come from a
    cumulative-width scan, and the coefficient matrix lands in one fancy
    assignment per variable class — the same COO-style batching the compile
    path uses, carried into the solve path.
    """
    n = problem.num_vars
    lb = np.asarray(problem.lb, dtype=float)
    ub = np.asarray(problem.ub, dtype=float)

    fin_lb = np.isfinite(lb)
    fin_ub = np.isfinite(ub)
    # Mirrored: lb = -inf with finite ub, substituted as x = ub - x'.
    mirrored = ~fin_lb & fin_ub
    free = ~fin_lb & ~fin_ub

    shift = np.zeros(n)
    shift[fin_lb] = lb[fin_lb]
    shift[mirrored] = ub[mirrored]
    sign = np.ones(n)
    sign[mirrored] = -1.0

    # Free variables split into two columns; everything else takes one.
    width = np.where(free, 2, 1) if n else np.zeros(0, dtype=int)
    offsets = np.concatenate([np.zeros(1, dtype=int), np.cumsum(width, dtype=int)])
    pos = offsets[:-1]
    neg = np.where(free, pos + 1, -1)
    n_structural = int(offsets[-1])

    m_ub = problem.A_ub.shape[0]
    m_eq = problem.A_eq.shape[0]
    m = m_ub + m_eq
    n_total = n_structural + m_ub

    A = np.zeros((m, n_total))
    b = np.zeros(m)
    c = np.zeros(n_total)
    u = np.full(n_total, np.inf)
    both = fin_lb & fin_ub
    u[pos[both]] = ub[both] - lb[both]

    remapped = bool(mirrored.any() or free.any())
    if m:
        b = np.concatenate(
            [np.asarray(problem.b_ub, dtype=float), np.asarray(problem.b_eq, dtype=float)]
        )
        if n:
            if m_eq == 0:
                A_orig = problem.A_ub
            elif m_ub == 0:
                A_orig = problem.A_eq
            else:
                A_orig = np.concatenate([problem.A_ub, problem.A_eq], axis=0)
            if remapped:
                A[:, pos] = A_orig * sign
                if free.any():
                    A[:, neg[free]] = -A_orig[:, free]
            else:
                # All variables lb-shifted: pos is the identity map, so the
                # coefficients land in one contiguous block copy.
                A[:, :n] = A_orig
            if shift.any():
                b = b - A_orig @ shift
        if m_ub:
            A[np.arange(m_ub), n_structural + np.arange(m_ub)] = 1.0  # slacks
    if n:
        if remapped:
            c[pos] = problem.c * sign
            if free.any():
                c[neg[free]] = -problem.c[free]
        else:
            c[:n] = problem.c

    row_kind = np.concatenate(
        [np.full(m_ub, ROW_UB, dtype=np.int8), np.full(m_eq, ROW_EQ, dtype=np.int8)]
    )
    row_ref = np.concatenate([np.arange(m_ub), np.arange(m_eq)]).astype(int)

    # normalize to b >= 0 for phase 1
    flip = b < 0
    A[flip] *= -1.0
    b[flip] *= -1.0
    row_sign = np.where(flip, -1.0, 1.0)

    return StandardForm(
        A=A, b=b, c=c, u=u, shift=shift, pos=pos, neg=neg, sign=sign,
        n_structural=n_structural,
        row_kind=row_kind, row_ref=row_ref, row_sign=row_sign,
    )


@dataclass
class SimplexTableau:
    """Final simplex state: ``T`` is the (m+1, n+1) tableau whose last row is
    reduced costs and last column the basic solution; ``basis[i]`` is the
    column basic in row ``i``.

    ``at_upper``/``u`` carry the bounded-variable state: ``at_upper[q]``
    marks nonbasic columns sitting at their (finite) upper bound ``u[q]``
    rather than at zero.  ``rows[i]`` is the index of tableau row ``i`` in
    the *input* constraint matrix (redundant rows are dropped after phase 1,
    so the tableau may have fewer rows than the standard form).  ``farkas``
    is populated only on infeasible exits: the phase-1 dual vector ``y``
    (one entry per input row) certifying that ``Ax = b, 0 <= x <= u`` has
    no solution.
    """

    T: np.ndarray
    basis: np.ndarray
    rows: np.ndarray | None = None
    farkas: np.ndarray | None = None
    at_upper: np.ndarray | None = None
    u: np.ndarray | None = None

    @property
    def m(self) -> int:
        return self.T.shape[0] - 1

    @property
    def n(self) -> int:
        return self.T.shape[1] - 1

    def solution(self) -> np.ndarray:
        x = np.zeros(self.n)
        if self.at_upper is not None and self.at_upper.any():
            up = self.at_upper[: self.n]
            x[up] = self.u[: self.n][up]
        x[self.basis] = self.T[:-1, -1]
        return x


@dataclass
class SimplexBasis:
    """A reusable warm-start object: the optimal basis of a previous solve.

    Holds everything needed to restart phase 2 on a *bound-modified*
    re-solve: the basic column per surviving row, the at-upper flags of the
    nonbasic columns, the surviving row indices, and the standardization
    fingerprint (``pos``/``neg``/``sign`` plus shape) that must match for
    the basis to be meaningful in the new problem's column space.
    """

    basis: np.ndarray
    at_upper: np.ndarray
    rows: np.ndarray
    n_cols: int
    m_rows: int
    pos: np.ndarray
    neg: np.ndarray
    sign: np.ndarray

    def matches(self, sf: StandardForm) -> bool:
        """True when ``sf`` shares this basis's standard-form layout."""
        return (
            self.n_cols == sf.A.shape[1]
            and self.m_rows == sf.A.shape[0]
            and np.array_equal(self.pos, sf.pos)
            and np.array_equal(self.neg, sf.neg)
            and np.array_equal(self.sign, sf.sign)
        )


def _basis_from_tableau(tableau: SimplexTableau, sf: StandardForm) -> SimplexBasis:
    n = sf.A.shape[1]
    at_upper = (
        tableau.at_upper[:n].copy()
        if tableau.at_upper is not None
        else np.zeros(n, dtype=bool)
    )
    rows = tableau.rows if tableau.rows is not None else np.arange(tableau.m)
    sb = SimplexBasis(
        basis=tableau.basis.copy(), at_upper=at_upper, rows=rows.copy(),
        n_cols=n, m_rows=sf.A.shape[0],
        pos=sf.pos.copy(), neg=sf.neg.copy(), sign=sf.sign.copy(),
    )
    # The revised engine exports its final basis inverse; children warm-
    # starting from this basis adopt it (after a residual check) instead of
    # re-running the LU.  The tableau engine has no factor to export.
    inv = getattr(tableau, "factor_inv", None)
    if inv is not None:
        sb.factor_hint = inv
    return sb


def _pivot(T: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the tableau on (row, col) with vectorized elimination."""
    T[row] /= T[row, col]
    colvals = T[:, col].copy()
    colvals[row] = 0.0
    # rank-1 update: T -= outer(colvals, pivot_row)
    T -= np.outer(colvals, T[row])
    T[:, col] = 0.0
    T[row, col] = 1.0
    basis[row] = col


def _flip_to_lower(T: np.ndarray, at_upper: np.ndarray, u: np.ndarray, col: int) -> None:
    """Re-express an at-upper nonbasic column relative to its lower bound."""
    T[:-1, -1] += u[col] * T[:-1, col]
    T[-1, -1] += u[col] * T[-1, col]
    at_upper[col] = False


def _flip_to_upper(T: np.ndarray, at_upper: np.ndarray, u: np.ndarray, col: int) -> None:
    """Re-express a nonbasic column relative to its (finite) upper bound."""
    T[:-1, -1] -= u[col] * T[:-1, col]
    T[-1, -1] -= u[col] * T[-1, col]
    at_upper[col] = True


def _iterate(
    T: np.ndarray,
    basis: np.ndarray,
    at_upper: np.ndarray,
    u: np.ndarray,
    max_iter: int,
    deadline: Deadline | None = None,
    breakdown: dict | None = None,
) -> tuple[str, int]:
    """Run bounded primal simplex iterations until a terminal state.

    Returns (status, iterations): status in {"optimal", "unbounded", "limit",
    "deadline"}.  Uses Dantzig pricing over the bound-aware violation (a
    nonbasic at lower wants a negative reduced cost, one at upper a positive
    one); after 2*m consecutive degenerate steps switches to Bland's rule to
    escape cycling.  Each step is either a pivot or a *bound flip* (the
    entering variable travels to its opposite bound without a basis change —
    an O(m) rhs update instead of an O(m·n) pivot).  The deadline is polled
    every step so a single large LP cannot blow through the shared
    wall-clock budget.

    ``breakdown`` (optional, telemetry-enabled call sites only) accumulates
    per-section wall seconds under ``"pricing"``, ``"ratio_test"``, and
    ``"basis_update"``; ``None`` keeps the hot loop timer-free.
    """
    m = T.shape[0] - 1
    n_cols = T.shape[1] - 1
    in_basis = np.zeros(n_cols, dtype=bool)
    in_basis[basis] = True
    stall = 0
    bland = False
    track = breakdown is not None

    def _acc(key: str, t0: float) -> float:
        now = perf_counter()
        breakdown[key] = breakdown.get(key, 0.0) + now - t0
        return now

    for it in range(max_iter):
        if deadline is not None and deadline.expired():
            return "deadline", it
        t0 = perf_counter() if track else 0.0
        red = T[-1, :-1]
        # Violation: at-lower columns improve when red < 0, at-upper when
        # red > 0.  Basic columns are masked out.
        viol = np.where(at_upper[:n_cols], red, -red)
        viol[in_basis] = -np.inf
        if bland:
            cand = np.nonzero(viol > _EPS)[0]
            if cand.size == 0:
                if track:
                    _acc("pricing", t0)
                return "optimal", it
            col = int(cand[0])
        else:
            col = int(np.argmax(viol))
            if viol[col] <= _EPS:
                if track:
                    _acc("pricing", t0)
                return "optimal", it
        from_upper = bool(at_upper[col])
        if track:
            t0 = _acc("pricing", t0)
        alpha = T[:-1, col]
        rhs = T[:-1, -1]
        ub_basis = u[basis]
        # Three-way ratio test on the entering step length t >= 0:
        # a basic drops to zero, a basic hits its own upper bound, or the
        # entering variable reaches its opposite bound (t = u[col]).
        if from_upper:
            dec = alpha < -_EPS
            inc = alpha > _EPS
        else:
            dec = alpha > _EPS
            inc = alpha < -_EPS
        ratios = np.full(m, np.inf)
        ratios[dec] = np.maximum(rhs[dec], 0.0) / np.abs(alpha[dec])
        fin_inc = inc & np.isfinite(ub_basis)
        ratios[fin_inc] = np.maximum(ub_basis[fin_inc] - rhs[fin_inc], 0.0) / np.abs(alpha[fin_inc])
        t_own = u[col]
        if m:
            row = int(np.argmin(ratios))
            t_row = float(ratios[row])
        else:
            row, t_row = -1, math.inf
        if not math.isfinite(t_own) and not math.isfinite(t_row):
            if track:
                _acc("ratio_test", t0)
            return "unbounded", it
        if t_own <= t_row:
            if track:
                t0 = _acc("ratio_test", t0)
            # Bound flip: no pivot, the entering column swaps bounds.
            if from_upper:
                _flip_to_lower(T, at_upper, u, col)
            else:
                _flip_to_upper(T, at_upper, u, col)
            if track:
                _acc("basis_update", t0)
            if t_own <= _EPS:
                stall += 1
                if stall > 2 * m + 10:
                    bland = True
            else:
                stall = 0
                bland = False
            continue
        if bland:
            # tie-break by smallest basis index for anti-cycling
            ties = np.nonzero(np.abs(ratios - t_row) <= _EPS * (1 + abs(t_row)))[0]
            row = int(min(ties, key=lambda i: basis[i]))
        leave = int(basis[row])
        leave_to_upper = (alpha[row] > 0.0) if from_upper else (alpha[row] < 0.0)
        degenerate = t_row <= _EPS
        if track:
            t0 = _acc("ratio_test", t0)
        if from_upper:
            _flip_to_lower(T, at_upper, u, col)
        _pivot(T, basis, row, col)
        in_basis[leave] = False
        in_basis[col] = True
        if leave_to_upper:
            _flip_to_upper(T, at_upper, u, leave)
        if track:
            _acc("basis_update", t0)
        if degenerate:
            stall += 1
            if stall > 2 * m + 10:
                bland = True
        else:
            stall = 0
            bland = False
    return "limit", max_iter


def _iterate_dual(
    T: np.ndarray,
    basis: np.ndarray,
    at_upper: np.ndarray,
    u: np.ndarray,
    max_iter: int,
    deadline: Deadline | None = None,
) -> tuple[str, int]:
    """Bounded dual simplex: restore primal feasibility from a dual-feasible basis.

    Picks the most-violated basic variable (below zero, or above its own
    upper bound), then the entering column by the smallest reduced-cost
    ratio among sign-eligible nonbasics.  Returns ``("feasible", it)`` once
    every basic value is within its bounds, ``("infeasible", it)`` when a
    violated row admits no entering column (the problem has no feasible
    point — callers fall back to a cold solve so the phase-1 Farkas
    certificate is produced), or ``"limit"``/``"deadline"``.
    """
    m = T.shape[0] - 1
    n_cols = T.shape[1] - 1
    in_basis = np.zeros(n_cols, dtype=bool)
    in_basis[basis] = True
    for it in range(max_iter):
        if deadline is not None and deadline.expired():
            return "deadline", it
        rhs = T[:-1, -1]
        ub_basis = u[basis]
        below = -rhs
        over = np.where(np.isfinite(ub_basis), rhs - ub_basis, -np.inf)
        viol = np.maximum(below, over)
        if m == 0:
            return "feasible", it
        row = int(np.argmax(viol))
        if viol[row] <= _FEAS_TOL:
            return "feasible", it
        leave_to_upper = over[row] > below[row]
        alpha = T[row, :-1]
        red = T[-1, :-1]
        nonbasic = ~in_basis
        at_up = at_upper[:n_cols]
        if leave_to_upper:
            elig = nonbasic & ((~at_up & (alpha > _EPS)) | (at_up & (alpha < -_EPS)))
        else:
            elig = nonbasic & ((~at_up & (alpha < -_EPS)) | (at_up & (alpha > _EPS)))
        idx = np.nonzero(elig)[0]
        if idx.size == 0:
            return "infeasible", it
        ratios = np.abs(red[idx]) / np.abs(alpha[idx])
        best = float(ratios.min())
        # smallest column index among (near-)ties: Bland-flavoured tie-break
        col = int(idx[ratios <= best + _EPS * (1.0 + best)][0])
        leave = int(basis[row])
        if at_upper[col]:
            _flip_to_lower(T, at_upper, u, col)
        _pivot(T, basis, row, col)
        in_basis[leave] = False
        in_basis[col] = True
        if leave_to_upper:
            _flip_to_upper(T, at_upper, u, leave)
    return "limit", max_iter


def _install_objective(
    T: np.ndarray, basis: np.ndarray, at_upper: np.ndarray, u: np.ndarray, c: np.ndarray
) -> None:
    """Write objective ``c`` into the last row, priced out over the basis."""
    n = c.shape[0]
    T[-1, :] = 0.0
    T[-1, :n] = c
    for i in range(T.shape[0] - 1):
        coef = T[-1, basis[i]]
        if coef != 0.0:
            T[-1] -= coef * T[i]
    # The elimination above fixed the reduced costs; set the objective cell
    # directly from the represented point (basics at rhs, nonbasics at their
    # active bound) so flips keep -T[-1,-1] equal to the true objective.
    x_now = np.zeros(n)
    up = at_upper[:n]
    if up.any():
        x_now[up] = u[:n][up]
    x_now[basis] = T[:-1, -1]
    T[-1, -1] = -float(c @ x_now)


def simplex_solve(
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    max_iter: int = 50_000,
    deadline: Deadline | None = None,
    telemetry: Telemetry | None = None,
    u: np.ndarray | None = None,
) -> tuple[str, np.ndarray | None, float, int, SimplexTableau | None]:
    """Two-phase bounded simplex on ``min c'x s.t. Ax=b (b>=0), 0<=x<=u``.

    ``u`` defaults to all-infinite (the classic ``x >= 0`` form).  Returns
    ``(status, x, objective, iterations, tableau)`` with status in
    ``{"optimal", "infeasible", "unbounded", "limit", "deadline"}``.
    """
    m, n = A.shape
    if u is None:
        u = np.full(n, np.inf)
    if m == 0:
        # No rows: 0 <= x <= u only.  A negative cost direction with no
        # finite bound is unbounded; otherwise bounded costs sit at u.
        neg_c = c < -_EPS
        if np.any(neg_c & ~np.isfinite(u)):
            return "unbounded", None, -math.inf, 0, None
        at_upper = neg_c & np.isfinite(u)
        tab = SimplexTableau(
            np.zeros((1, n + 1)), np.zeros(0, dtype=int),
            rows=np.zeros(0, dtype=int), at_upper=at_upper, u=u.copy(),
        )
        x = tab.solution()
        return "optimal", x, float(c @ x), 0, tab

    # Phase 1: artificial basis, all structural columns at their lower bound.
    T = np.zeros((m + 1, n + m + 1))
    T[:-1, :n] = A
    T[:-1, n : n + m] = np.eye(m)
    T[:-1, -1] = b
    basis = np.arange(n, n + m)
    u_ext = np.concatenate([u, np.full(m, np.inf)])
    at_upper = np.zeros(n + m, dtype=bool)
    # phase-1 objective: sum of artificials -> reduced costs = -(row sums)
    T[-1, :n] = -A.sum(axis=0)
    T[-1, -1] = -b.sum()

    if telemetry:
        with telemetry.phase("simplex_phase1", rows=m, cols=n) as info:
            breakdown: dict = {}
            status, it1 = _iterate(
                T, basis, at_upper, u_ext, max_iter, deadline, breakdown=breakdown
            )
            info["pivots"] = it1
            info["breakdown"] = breakdown
    else:
        status, it1 = _iterate(T, basis, at_upper, u_ext, max_iter, deadline)
    if status in ("limit", "deadline"):
        return status, None, math.nan, it1, None
    if T[-1, -1] < -1e-7:
        # Phase-1 optimum is positive: read the Farkas vector off the
        # artificial columns (c_a = 1, so y_i = 1 - reduced_cost(a_i)).
        farkas = 1.0 - T[-1, n : n + m]
        tab = SimplexTableau(
            T, basis, rows=np.arange(m), farkas=farkas,
            at_upper=at_upper, u=u_ext,
        )
        return "infeasible", None, math.nan, it1, tab

    # Drive remaining artificials out of the basis where possible.
    for i in range(m):
        if basis[i] >= n:
            row_vals = T[i, :n]
            candidates = np.nonzero(np.abs(row_vals) > _EPS)[0]
            if candidates.size:
                col = int(candidates[0])
                if at_upper[col]:
                    _flip_to_lower(T, at_upper, u_ext, col)
                _pivot(T, basis, i, col)
    # Rows still basic in an artificial are redundant (zero rows); drop them
    # and delete the artificial columns so they can never re-enter.
    keep_rows = basis < n
    T = np.concatenate([T[:-1][keep_rows], T[-1:]], axis=0)
    basis = basis[keep_rows]
    row_ids = np.nonzero(keep_rows)[0]
    T = np.delete(T, np.s_[n : n + m], axis=1)
    at_upper = at_upper[:n]
    m2 = T.shape[0] - 1

    # Phase 2: install the real objective.
    _install_objective(T, basis, at_upper, u, c)

    if telemetry:
        with telemetry.phase("simplex_phase2", rows=m2, cols=n) as info:
            breakdown = {}
            status, it2 = _iterate(
                T, basis, at_upper, u, max_iter, deadline, breakdown=breakdown
            )
            info["pivots"] = it2
            info["breakdown"] = breakdown
    else:
        status, it2 = _iterate(T, basis, at_upper, u, max_iter, deadline)
    tableau = SimplexTableau(T, basis, rows=row_ids, at_upper=at_upper, u=u.copy())
    if status == "optimal":
        x = tableau.solution()
        return "optimal", x, float(c @ x), it1 + it2, tableau
    if status == "unbounded":
        return "unbounded", None, -math.inf, it1 + it2, None
    return status, None, math.nan, it1 + it2, None


def _dual_certificate(
    problem: CompiledProblem, sf: StandardForm, tableau: SimplexTableau
) -> dict[str, np.ndarray] | None:
    """Recover original-space dual multipliers from the optimal basis.

    Solves ``B' y = c_B`` on the standard form restricted to the rows that
    survived phase 1 (dropped redundant rows get multiplier 0), then maps
    the row duals back through the ub/eq bookkeeping.  Column upper-bound
    multipliers need not be exported: the exact checker re-prices reduced
    costs over the original box, which reproduces them.  Returns ``None``
    when the basis matrix is numerically singular — the solve is then
    simply uncertified rather than wrongly certified.
    """
    if tableau.rows is None or sf.row_kind is None:
        return None
    kept = tableau.rows
    y_kept = getattr(tableau, "y", None)
    if y_kept is None or y_kept.shape != kept.shape:
        B = sf.A[kept][:, tableau.basis]
        c_B = sf.c[tableau.basis]
        try:
            y_kept = np.linalg.solve(B.T, c_B)
        except np.linalg.LinAlgError:
            return None
    y_std = np.zeros(sf.A.shape[0])
    y_std[kept] = y_kept
    return sf.map_row_duals(y_std, problem.A_ub.shape[0], problem.A_eq.shape[0])


def _warm_solve(
    sf: StandardForm,
    warm: SimplexBasis,
    max_iter: int,
    deadline: Deadline | None,
    breakdown: dict | None = None,
) -> tuple[str, np.ndarray | None, float, int, SimplexTableau | None, str] | None:
    """Phase-2-only re-solve from a previous basis; ``None`` requests a cold solve.

    The returned tuple matches :func:`simplex_solve` plus a trailing mode
    string (``"primal"`` when the refactorized point was already feasible,
    ``"dual"`` when the bounded dual simplex repaired it first).
    ``breakdown`` adds ``"refactorization"`` (the dense basis re-solve) and
    ``"dual_repair"`` seconds alongside the pivot-loop sections.
    """
    m_all, n = sf.A.shape
    rows = np.asarray(warm.rows, dtype=int)
    basis = warm.basis.astype(int).copy()
    if rows.size != basis.size or (rows.size == 0 and m_all > 0):
        return None
    if rows.size and (rows.max() >= m_all or basis.max() >= n):
        return None
    u = sf.u
    at_upper = warm.at_upper.copy()
    # Sanitize statuses against the new bounds: a column whose upper bound
    # became infinite cannot sit at it, and basic columns are never flagged.
    at_upper &= np.isfinite(u)
    at_upper[basis] = False

    A = sf.A[rows]
    b = sf.b[rows]
    refac_t0 = perf_counter() if breakdown is not None else 0.0
    try:
        B = A[:, basis]
        body = np.linalg.solve(B, A)
        rhs = np.linalg.solve(B, b)
    except np.linalg.LinAlgError:
        return None
    finally:
        if breakdown is not None:
            breakdown["refactorization"] = (
                breakdown.get("refactorization", 0.0) + perf_counter() - refac_t0
            )
    if not (np.isfinite(body).all() and np.isfinite(rhs).all()):
        return None
    if at_upper.any():
        rhs = rhs - body[:, at_upper] @ u[at_upper]

    mcur = rows.size
    T = np.zeros((mcur + 1, n + 1))
    T[:-1, :n] = body
    T[:-1, -1] = rhs
    _install_objective(T, basis, at_upper, u, sf.c)
    T[-1, basis] = 0.0  # clean exact zeros on the basic reduced costs

    scale = 1.0 + float(np.abs(rhs).max(initial=0.0))
    ub_basis = u[basis]
    primal_ok = bool(
        np.all(rhs >= -_FEAS_TOL * scale)
        and np.all((rhs <= ub_basis + _FEAS_TOL * scale) | ~np.isfinite(ub_basis))
    )
    red = T[-1, :-1]
    in_basis = np.zeros(n, dtype=bool)
    in_basis[basis] = True
    cscale = 1.0 + float(np.abs(sf.c).max(initial=0.0))
    dual_viol = np.where(at_upper, red, -red)
    dual_viol[in_basis] = -np.inf
    dual_ok = bool(np.all(dual_viol <= _FEAS_TOL * cscale))

    iters = 0
    mode = "primal"
    if not primal_ok:
        if not dual_ok:
            return None
        mode = "dual"
        # Cap the repair: a stalled dual loop falls back to a cold solve
        # rather than burning the whole pivot budget.
        cap = min(max_iter, 4 * (mcur + n) + 100)
        repair_t0 = perf_counter() if breakdown is not None else 0.0
        dstat, dit = _iterate_dual(T, basis, at_upper, u, cap, deadline)
        if breakdown is not None:
            breakdown["dual_repair"] = (
                breakdown.get("dual_repair", 0.0) + perf_counter() - repair_t0
            )
        iters += dit
        if dstat == "deadline":
            return "deadline", None, math.nan, iters, None, mode
        if dstat != "feasible":
            # "infeasible" → cold solve produces the Farkas certificate;
            # "limit" → cold solve from scratch.
            return None
    status, pit = _iterate(T, basis, at_upper, u, max_iter, deadline, breakdown=breakdown)
    iters += pit
    tableau = SimplexTableau(T, basis, rows=rows, at_upper=at_upper, u=u.copy())
    if status == "optimal":
        x = tableau.solution()
        if rows.size < m_all:
            # Rows dropped as redundant by the parent solve must still hold;
            # bound-only modifications preserve their consistency, but verify
            # rather than trust the numerics.
            dropped = np.setdiff1d(np.arange(m_all), rows, assume_unique=False)
            resid = sf.A[dropped] @ x - sf.b[dropped]
            if np.abs(resid).max(initial=0.0) > 1e-6 * scale:
                return None
        return "optimal", x, float(sf.c @ x), iters, tableau, mode
    if status == "unbounded":
        # Reached from a primal-feasible point, so the ray is genuine.
        return "unbounded", None, -math.inf, iters, None, mode
    if status == "deadline":
        return "deadline", None, math.nan, iters, None, mode
    return None  # "limit" on the warm path: retry cold


def solve_lp_simplex(
    problem: CompiledProblem,
    max_iter: int = 50_000,
    deadline: Deadline | None = None,
    telemetry: Telemetry | None = None,
    warm_start: SimplexBasis | None = None,
    engine: str | None = None,
) -> SolverResult:
    """Solve the LP relaxation of a compiled problem with the pure simplex.

    Integrality markers are ignored (use the branch-and-bound driver for
    MILPs).  The returned ``extra['tableau']``/``extra['standard_form']``
    feed the Gomory cut generator.  An expired ``deadline`` unwinds the
    pivot loop and surfaces as ``SolverStatus.TIME_LIMIT``.

    Engines: ``engine`` picks the pivot engine (``"revised"`` |
    ``"tableau"``); ``None`` defers to ``REPRO_SIMPLEX`` and then the
    revised default (see :func:`resolve_engine`).  ``extra['engine']``
    records the choice.  A revised-engine numerical failure degrades loudly
    (``backend_degraded`` event) to the dense tableau — never to a wrong
    answer.

    Warm starts: pass a previous result's ``extra['basis']`` as
    ``warm_start`` to attempt a phase-2-only re-solve (see
    :func:`_warm_solve` / :func:`repro.solver.revised.warm_solve_revised`);
    ``extra['warm']`` on the result records whether the warm path was used
    (``{"used": bool, "mode": "primal"|"dual", "reason": ...}``).  A warm
    basis that is rejected — layout mismatch after standardization, or a
    failed repair — falls back to a cold solve *loudly*: a
    ``warm_start_rejected`` telemetry event (``where="simplex"``) carries
    the reason alongside the ``extra['warm']`` record.  An ``OPTIMAL``
    result always carries a fresh ``extra['basis']`` for the next re-solve
    in the chain; bases are engine-portable in both directions.

    Certificates: an ``OPTIMAL`` result carries
    ``extra['dual_certificate']`` (``y_ub``/``y_eq`` multipliers of the
    original rows) and an ``INFEASIBLE`` one carries
    ``extra['farkas_certificate']`` — both in the exact convention checked
    by :func:`repro.verify.certify_result`, identically for both engines.
    """
    engine = resolve_engine(engine)
    # Standard-form conversion builds the full constraint matrix — a real
    # cost on large instances, so it gets its own phase in the event stream.
    if telemetry:
        with telemetry.phase("standard_form") as info:
            sf = standardize(problem)
            info["rows"], info["cols"] = sf.A.shape
    else:
        sf = standardize(problem)
    # The factored engine needs at least one row; the no-row LP is a trivial
    # bound inspection that the tableau path answers without pivoting.
    use_revised = engine == "revised" and sf.A.shape[0] > 0

    warm_info: dict = {"used": False, "reason": "no_warm_start"}
    outcome = None
    if np.any(sf.u < -_FEAS_TOL):
        # Crossed bounds (lb > ub): trivially infeasible, no row certificate.
        return SolverResult(
            status=SolverStatus.INFEASIBLE, iterations=0,
            extra={"warm": warm_info, "engine": engine},
        )
    if warm_start is not None:
        if warm_start.matches(sf):
            warm_fn = warm_solve_revised if use_revised else _warm_solve
            if telemetry:
                with telemetry.phase("simplex_warm", engine=engine) as info:
                    breakdown: dict = {}
                    attempt = warm_fn(
                        sf, warm_start, max_iter, deadline, breakdown=breakdown
                    )
                    info["pivots"] = attempt[3] if attempt is not None else 0
                    info["accepted"] = attempt is not None
                    info["breakdown"] = breakdown
            else:
                attempt = warm_fn(sf, warm_start, max_iter, deadline)
            if attempt is not None:
                status, x_std, obj_std, iters, tableau, mode = attempt
                outcome = (status, x_std, obj_std, iters, tableau)
                warm_info = {"used": True, "mode": mode}
            else:
                warm_info = {"used": False, "reason": "repair_failed"}
        else:
            warm_info = {"used": False, "reason": "layout_mismatch"}
        if not warm_info["used"] and telemetry:
            # Loud cold fallback: a basis that survived presolve/standardize
            # mapping but was rejected here must be visible in the event
            # stream, not silently re-densified.
            telemetry.emit(
                "warm_start_rejected", where="simplex", engine=engine,
                reason=warm_info["reason"],
            )

    if outcome is None:
        if use_revised:
            try:
                outcome = revised_solve(
                    sf, max_iter=max_iter, deadline=deadline, telemetry=telemetry
                )
            except NumericalTrouble as exc:
                if telemetry:
                    telemetry.emit(
                        "backend_degraded", backend="simplex-revised",
                        fallback="simplex-tableau", reason=str(exc),
                    )
                outcome = None
        if outcome is None:
            outcome = simplex_solve(
                sf.A, sf.b, sf.c, max_iter=max_iter, deadline=deadline,
                telemetry=telemetry, u=sf.u,
            )
    status, x_std, obj_std, iters, tableau = outcome

    if status == "optimal":
        x = sf.recover(x_std)
        raw = float(problem.c @ x) + problem.c0
        obj = -raw if problem.maximize else raw
        extra = {
            "tableau": tableau,
            "standard_form": sf,
            "warm": warm_info,
            "engine": engine,
            "basis": _basis_from_tableau(tableau, sf),
        }
        cert = _dual_certificate(problem, sf, tableau)
        if cert is not None:
            extra["dual_certificate"] = cert
        return SolverResult(
            status=SolverStatus.OPTIMAL, x=x, objective=obj, bound=obj,
            iterations=iters, extra=extra,
        )
    if status == "infeasible":
        extra = {"warm": warm_info, "engine": engine}
        if tableau is not None and tableau.farkas is not None:
            extra["farkas_certificate"] = sf.map_row_duals(
                tableau.farkas, problem.A_ub.shape[0], problem.A_eq.shape[0]
            )
        return SolverResult(status=SolverStatus.INFEASIBLE, iterations=iters, extra=extra)
    if status == "unbounded":
        return SolverResult(
            status=SolverStatus.UNBOUNDED, iterations=iters,
            extra={"warm": warm_info, "engine": engine},
        )
    if status == "deadline":
        if telemetry:
            telemetry.emit("deadline_exceeded", where="simplex", pivots=iters)
        return SolverResult(
            status=SolverStatus.TIME_LIMIT, iterations=iters,
            extra={"warm": warm_info, "engine": engine},
        )
    return SolverResult(
        status=SolverStatus.ITERATION_LIMIT, iterations=iters,
        extra={"warm": warm_info, "engine": engine},
    )
