"""Two-phase dense tableau simplex for linear programs.

This is the from-scratch LP engine standing in for the commercial solver the
paper used.  It works on the :class:`~repro.solver.model.CompiledProblem`
matrix form, converting general bounds and inequality rows to the
computational standard form

    min c' x   s.t.  A x = b,  x >= 0

via lower-bound shifting, free-variable splitting, and slack columns, then
runs a dense two-phase tableau simplex.  Dantzig pricing is used by default
with a switch to Bland's rule after a stall is detected, which guarantees
termination on degenerate problems.

The tableau is kept as one contiguous ``(m+1, n+1)`` numpy array and pivots
are rank-1 updates (vectorized row elimination) — the profiling-first idiom
from the HPC guides: the hot loop does O(m·n) numpy work per pivot and no
Python-level iteration over matrix entries.

The final tableau and basis are exposed (:class:`SimplexTableau`) because the
Gomory cut generator in :mod:`repro.solver.cuts` reads fractional rows off
the optimal tableau.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .model import CompiledProblem
from .result import SolverResult, SolverStatus
from .telemetry import Deadline, Telemetry

__all__ = ["StandardForm", "SimplexTableau", "standardize", "simplex_solve", "solve_lp_simplex"]

_EPS = 1e-9


ROW_UB, ROW_EQ, ROW_BOUND = 0, 1, 2


@dataclass
class StandardForm:
    """Standard-form data plus the bookkeeping to map solutions back.

    ``x_original[j] = shift[j] + x_std[pos[j]] - (x_std[neg[j]] if split)``
    where ``pos``/``neg`` give the standard-form columns of each original
    variable (``neg[j] < 0`` when the variable was not split).

    ``row_kind``/``row_ref``/``row_sign`` record, for every standard-form
    row, which original constraint it came from (``ROW_UB``/``ROW_EQ`` with
    the original row index, or ``ROW_BOUND`` with the variable index) and
    whether the row was negated for phase 1.  This is what lets dual
    vectors computed on the standard form be mapped back to multipliers of
    the *original* ``A_ub``/``A_eq`` rows for certificate checking.
    """

    A: np.ndarray
    b: np.ndarray
    c: np.ndarray
    shift: np.ndarray
    pos: np.ndarray
    neg: np.ndarray
    n_structural: int  # columns that correspond to original variables
    row_kind: np.ndarray | None = None
    row_ref: np.ndarray | None = None
    row_sign: np.ndarray | None = None

    def recover(self, x_std: np.ndarray) -> np.ndarray:
        x = self.shift + x_std[self.pos]
        split = self.neg >= 0
        if split.any():
            x[split] -= x_std[self.neg[split]]
        return x

    def map_row_duals(self, y_std: np.ndarray, m_ub: int, m_eq: int) -> dict[str, np.ndarray]:
        """Translate standard-form row multipliers to original-row ones.

        For a standard row built as ``sign * (original equation)``, the
        multiplier on the original equation is ``sign * y_std``; the
        original-space convention used by :mod:`repro.verify.certify`
        (``y_ub >= 0`` entering the reduced costs as ``c + A_ub' y_ub``)
        flips the sign once more.  Bound-row multipliers are dropped — the
        checker re-derives optimal bound multipliers from the reduced
        costs, which can only improve the certified bound.
        """
        y_row = -self.row_sign * y_std
        y_ub = np.zeros(m_ub)
        y_eq = np.zeros(m_eq)
        for r in range(y_row.shape[0]):
            kind = self.row_kind[r]
            if kind == ROW_UB:
                y_ub[self.row_ref[r]] = y_row[r]
            elif kind == ROW_EQ:
                y_eq[self.row_ref[r]] = y_row[r]
        return {"y_ub": y_ub, "y_eq": y_eq}


def standardize(problem: CompiledProblem) -> StandardForm:
    """Convert a compiled problem to equality standard form with x >= 0.

    Handling per variable:

    * finite lb: substitute ``x = lb + x'`` (shift).
    * free (lb = -inf): split ``x = x+ - x-``.
    * finite ub: add a row ``x' + s = ub - lb`` (after shifting).

    Inequality rows gain slack columns.  Rows with negative rhs are negated
    so phase 1 can start from ``b >= 0``.
    """
    n = problem.num_vars
    lb, ub = problem.lb, problem.ub

    pos = np.zeros(n, dtype=int)
    neg = np.full(n, -1, dtype=int)
    shift = np.zeros(n)
    col = 0
    for j in range(n):
        if math.isfinite(lb[j]):
            shift[j] = lb[j]
            pos[j] = col
            col += 1
        else:
            pos[j] = col
            neg[j] = col + 1
            col += 2
    n_structural = col

    # Count extra rows/cols: one slack per A_ub row, one bound row + slack per finite ub.
    bounded = [j for j in range(n) if math.isfinite(ub[j])]
    m_ub = problem.A_ub.shape[0]
    m_eq = problem.A_eq.shape[0]
    m = m_ub + m_eq + len(bounded)
    n_total = n_structural + m_ub + len(bounded)

    A = np.zeros((m, n_total))
    b = np.zeros(m)
    c = np.zeros(n_total)

    def scatter(row_src: np.ndarray, row_dst: np.ndarray) -> float:
        """Write original-variable coefficients into standard-form columns;
        returns the rhs adjustment from lower-bound shifting."""
        adjust = 0.0
        nz = np.nonzero(row_src)[0]
        for j in nz:
            coef = row_src[j]
            row_dst[pos[j]] += coef
            if neg[j] >= 0:
                row_dst[neg[j]] -= coef
            adjust += coef * shift[j]
        return adjust

    row_kind = np.zeros(m, dtype=np.int8)
    row_ref = np.zeros(m, dtype=int)

    r = 0
    for i in range(m_ub):
        adj = scatter(problem.A_ub[i], A[r])
        A[r, n_structural + i] = 1.0  # slack
        b[r] = problem.b_ub[i] - adj
        row_kind[r], row_ref[r] = ROW_UB, i
        r += 1
    for i in range(m_eq):
        adj = scatter(problem.A_eq[i], A[r])
        b[r] = problem.b_eq[i] - adj
        row_kind[r], row_ref[r] = ROW_EQ, i
        r += 1
    for k, j in enumerate(bounded):
        A[r, pos[j]] = 1.0
        if neg[j] >= 0:
            A[r, neg[j]] = -1.0
        A[r, n_structural + m_ub + k] = 1.0  # bound slack
        b[r] = ub[j] - shift[j]
        row_kind[r], row_ref[r] = ROW_BOUND, j
        r += 1

    # objective
    for j in range(n):
        coef = problem.c[j]
        if coef != 0.0:
            c[pos[j]] += coef
            if neg[j] >= 0:
                c[neg[j]] -= coef

    # normalize to b >= 0 for phase 1
    flip = b < 0
    A[flip] *= -1.0
    b[flip] *= -1.0
    row_sign = np.where(flip, -1.0, 1.0)

    return StandardForm(
        A=A, b=b, c=c, shift=shift, pos=pos, neg=neg, n_structural=n_structural,
        row_kind=row_kind, row_ref=row_ref, row_sign=row_sign,
    )


@dataclass
class SimplexTableau:
    """Final simplex state: ``T`` is the (m+1, n+1) tableau whose last row is
    reduced costs and last column the basic solution; ``basis[i]`` is the
    column basic in row ``i``.

    ``rows[i]`` is the index of tableau row ``i`` in the *input* constraint
    matrix (redundant rows are dropped after phase 1, so the tableau may
    have fewer rows than the standard form).  ``farkas`` is populated only
    on infeasible exits: the phase-1 dual vector ``y`` (one entry per input
    row) satisfying ``y'A <= 0`` and ``y'b > 0`` — a certificate that
    ``Ax = b, x >= 0`` has no solution.
    """

    T: np.ndarray
    basis: np.ndarray
    rows: np.ndarray | None = None
    farkas: np.ndarray | None = None

    @property
    def m(self) -> int:
        return self.T.shape[0] - 1

    @property
    def n(self) -> int:
        return self.T.shape[1] - 1

    def solution(self) -> np.ndarray:
        x = np.zeros(self.n)
        x[self.basis] = self.T[:-1, -1]
        return x


def _pivot(T: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    """Pivot the tableau on (row, col) with vectorized elimination."""
    T[row] /= T[row, col]
    colvals = T[:, col].copy()
    colvals[row] = 0.0
    # rank-1 update: T -= outer(colvals, pivot_row)
    T -= np.outer(colvals, T[row])
    T[:, col] = 0.0
    T[row, col] = 1.0
    basis[row] = col


def _iterate(
    T: np.ndarray,
    basis: np.ndarray,
    max_iter: int,
    deadline: Deadline | None = None,
) -> tuple[str, int]:
    """Run primal simplex iterations until optimal/unbounded/limit/deadline.

    Returns (status, iterations): status in {"optimal", "unbounded", "limit",
    "deadline"}.  Uses Dantzig pricing; after 2*m consecutive degenerate
    pivots switches to Bland's rule to escape cycling.  The deadline is
    polled every pivot — one clock read against an O(m·n) numpy pivot — so
    a single large LP cannot blow through the shared wall-clock budget.
    """
    m = T.shape[0] - 1
    stall = 0
    bland = False
    for it in range(max_iter):
        if deadline is not None and deadline.expired():
            return "deadline", it
        red = T[-1, :-1]
        if bland:
            neg = np.nonzero(red < -_EPS)[0]
            if neg.size == 0:
                return "optimal", it
            col = int(neg[0])
        else:
            col = int(np.argmin(red))
            if red[col] >= -_EPS:
                return "optimal", it
        colvec = T[:-1, col]
        positive = colvec > _EPS
        if not positive.any():
            return "unbounded", it
        ratios = np.full(m, np.inf)
        ratios[positive] = T[:-1, -1][positive] / colvec[positive]
        row = int(np.argmin(ratios))
        if bland:
            # tie-break by smallest basis index for anti-cycling
            best = ratios[row]
            ties = np.nonzero(np.abs(ratios - best) <= _EPS * (1 + abs(best)))[0]
            row = int(min(ties, key=lambda i: basis[i]))
        degenerate = T[row, -1] <= _EPS
        _pivot(T, basis, row, col)
        if degenerate:
            stall += 1
            if stall > 2 * m + 10:
                bland = True
        else:
            stall = 0
            bland = False
    return "limit", max_iter


def simplex_solve(
    A: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    max_iter: int = 50_000,
    deadline: Deadline | None = None,
    telemetry: Telemetry | None = None,
) -> tuple[str, np.ndarray | None, float, int, SimplexTableau | None]:
    """Two-phase simplex on ``min c'x s.t. Ax=b (b>=0), x>=0``.

    Returns ``(status, x, objective, iterations, tableau)`` with status in
    ``{"optimal", "infeasible", "unbounded", "limit", "deadline"}``.
    """
    m, n = A.shape
    if m == 0:
        # No rows: x >= 0 only.  Any negative cost direction is unbounded.
        if np.any(c < -_EPS):
            return "unbounded", None, -math.inf, 0, None
        x = np.zeros(n)
        return "optimal", x, 0.0, 0, SimplexTableau(
            np.zeros((1, n + 1)), np.zeros(0, dtype=int), rows=np.zeros(0, dtype=int)
        )

    # Phase 1: artificial basis.
    T = np.zeros((m + 1, n + m + 1))
    T[:-1, :n] = A
    T[:-1, n : n + m] = np.eye(m)
    T[:-1, -1] = b
    basis = np.arange(n, n + m)
    # phase-1 objective: sum of artificials -> reduced costs = -(row sums)
    T[-1, :n] = -A.sum(axis=0)
    T[-1, -1] = -b.sum()

    if telemetry:
        with telemetry.phase("simplex_phase1", rows=m, cols=n) as info:
            status, it1 = _iterate(T, basis, max_iter, deadline)
            info["pivots"] = it1
    else:
        status, it1 = _iterate(T, basis, max_iter, deadline)
    if status in ("limit", "deadline"):
        return status, None, math.nan, it1, None
    if T[-1, -1] < -1e-7:
        # Phase-1 optimum is positive: read the Farkas vector off the
        # artificial columns (c_a = 1, so y_i = 1 - reduced_cost(a_i)).
        farkas = 1.0 - T[-1, n : n + m]
        tab = SimplexTableau(T, basis, rows=np.arange(m), farkas=farkas)
        return "infeasible", None, math.nan, it1, tab

    # Drive remaining artificials out of the basis where possible.
    for i in range(m):
        if basis[i] >= n:
            row = T[i, :n]
            candidates = np.nonzero(np.abs(row) > _EPS)[0]
            if candidates.size:
                _pivot(T, basis, i, int(candidates[0]))
    # Rows still basic in an artificial are redundant (zero rows); keep them
    # (their artificial stays at 0) but forbid re-entry by deleting columns.
    keep_rows = np.ones(m, dtype=bool)
    for i in range(m):
        if basis[i] >= n:
            keep_rows[i] = False
    T = np.concatenate([T[:-1][keep_rows], T[-1:]], axis=0)
    basis = basis[keep_rows]
    row_ids = np.nonzero(keep_rows)[0]
    T = np.delete(T, np.s_[n : n + m], axis=1)
    m2 = T.shape[0] - 1

    # Phase 2: install the real objective.
    T[-1, :] = 0.0
    T[-1, :n] = c
    # make reduced costs consistent with current basis: c_B' B^-1 A subtraction
    for i in range(m2):
        coef = T[-1, basis[i]]
        if coef != 0.0:
            T[-1] -= coef * T[i]

    if telemetry:
        with telemetry.phase("simplex_phase2", rows=m2, cols=n) as info:
            status, it2 = _iterate(T, basis, max_iter, deadline)
            info["pivots"] = it2
    else:
        status, it2 = _iterate(T, basis, max_iter, deadline)
    tableau = SimplexTableau(T, basis, rows=row_ids)
    if status == "optimal":
        x = tableau.solution()
        return "optimal", x, float(c @ x), it1 + it2, tableau
    if status == "unbounded":
        return "unbounded", None, -math.inf, it1 + it2, None
    return status, None, math.nan, it1 + it2, None


def _dual_certificate(
    problem: CompiledProblem, sf: StandardForm, tableau: SimplexTableau
) -> dict[str, np.ndarray] | None:
    """Recover original-space dual multipliers from the optimal basis.

    Solves ``B' y = c_B`` on the standard form restricted to the rows that
    survived phase 1 (dropped redundant rows get multiplier 0), then maps
    the row duals back through the ub/eq/bound bookkeeping.  Returns
    ``None`` when the basis matrix is numerically singular — the solve is
    then simply uncertified rather than wrongly certified.
    """
    if tableau.rows is None or sf.row_kind is None:
        return None
    kept = tableau.rows
    B = sf.A[kept][:, tableau.basis]
    c_B = sf.c[tableau.basis]
    try:
        y_kept = np.linalg.solve(B.T, c_B)
    except np.linalg.LinAlgError:
        return None
    y_std = np.zeros(sf.A.shape[0])
    y_std[kept] = y_kept
    return sf.map_row_duals(y_std, problem.A_ub.shape[0], problem.A_eq.shape[0])


def solve_lp_simplex(
    problem: CompiledProblem,
    max_iter: int = 50_000,
    deadline: Deadline | None = None,
    telemetry: Telemetry | None = None,
) -> SolverResult:
    """Solve the LP relaxation of a compiled problem with the pure simplex.

    Integrality markers are ignored (use the branch-and-bound driver for
    MILPs).  The returned ``extra['tableau']``/``extra['standard_form']``
    feed the Gomory cut generator.  An expired ``deadline`` unwinds the
    pivot loop and surfaces as ``SolverStatus.TIME_LIMIT``.

    Certificates: an ``OPTIMAL`` result carries
    ``extra['dual_certificate']`` (``y_ub``/``y_eq`` multipliers of the
    original rows) and an ``INFEASIBLE`` one carries
    ``extra['farkas_certificate']`` — both in the exact convention checked
    by :func:`repro.verify.certify_result`.
    """
    # Standard-form conversion builds the full tableau matrix — a real cost
    # on large instances, so it gets its own phase in the event stream.
    if telemetry:
        with telemetry.phase("standard_form") as info:
            sf = standardize(problem)
            info["rows"], info["cols"] = sf.A.shape
    else:
        sf = standardize(problem)
    status, x_std, obj_std, iters, tableau = simplex_solve(
        sf.A, sf.b, sf.c, max_iter=max_iter, deadline=deadline, telemetry=telemetry
    )
    if status == "optimal":
        x = sf.recover(x_std)
        raw = float(problem.c @ x) + problem.c0
        obj = -raw if problem.maximize else raw
        extra = {"tableau": tableau, "standard_form": sf}
        cert = _dual_certificate(problem, sf, tableau)
        if cert is not None:
            extra["dual_certificate"] = cert
        return SolverResult(
            status=SolverStatus.OPTIMAL, x=x, objective=obj, bound=obj,
            iterations=iters, extra=extra,
        )
    if status == "infeasible":
        extra = {}
        if tableau is not None and tableau.farkas is not None:
            extra["farkas_certificate"] = sf.map_row_duals(
                tableau.farkas, problem.A_ub.shape[0], problem.A_eq.shape[0]
            )
        return SolverResult(status=SolverStatus.INFEASIBLE, iterations=iters, extra=extra)
    if status == "unbounded":
        return SolverResult(status=SolverStatus.UNBOUNDED, iterations=iters)
    if status == "deadline":
        if telemetry:
            telemetry.emit("deadline_exceeded", where="simplex", pivots=iters)
        return SolverResult(status=SolverStatus.TIME_LIMIT, iterations=iters)
    return SolverResult(status=SolverStatus.ITERATION_LIMIT, iterations=iters)
