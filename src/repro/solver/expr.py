"""Linear-algebraic modeling primitives: variables, expressions, constraints.

This module provides the small algebraic modeling layer that the rest of the
library builds optimization problems with.  The paper solved its MILPs with
CPLEX behind AIMMS; here the same role is played by :class:`Variable` /
:class:`LinExpr` / :class:`Constraint` objects collected into a
:class:`repro.solver.model.Model` and handed to one of the solver backends.

The layer is intentionally dense-free: expressions are sparse mappings from
variable to coefficient, so models with tens of thousands of variables (large
scenario trees) compile without materializing dense rows until the backend
asks for matrices.
"""

from __future__ import annotations

import enum
import math
from typing import Iterable, Mapping

__all__ = [
    "VarType",
    "Variable",
    "LinExpr",
    "ConstraintSense",
    "Constraint",
    "lin_sum",
]


class VarType(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"


class Variable:
    """A single decision variable.

    Variables are created through :meth:`repro.solver.model.Model.add_var`,
    which assigns the ``index`` used to address the variable in compiled
    matrices.  Arithmetic on a variable produces :class:`LinExpr` objects;
    comparisons produce :class:`Constraint` objects, so models read close to
    the paper's notation::

        model.add_constr(beta[t - 1] + alpha[t] - beta[t] == demand[t])

    Parameters
    ----------
    name:
        Human-readable identifier (used in solutions and error messages).
    index:
        Column index in the compiled problem.
    lb, ub:
        Bounds; ``-inf``/``+inf`` allowed for continuous variables.
    vtype:
        Variable domain.  ``BINARY`` forces bounds into ``[0, 1]``.
    """

    __slots__ = ("name", "index", "lb", "ub", "vtype")

    def __init__(
        self,
        name: str,
        index: int,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: VarType = VarType.CONTINUOUS,
    ) -> None:
        if vtype is VarType.BINARY:
            lb, ub = max(0.0, lb), min(1.0, ub)
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        self.name = name
        self.index = index
        self.lb = float(lb)
        self.ub = float(ub)
        self.vtype = vtype

    # -- conversion ---------------------------------------------------------
    def to_expr(self) -> "LinExpr":
        """Return this variable as a single-term linear expression."""
        return LinExpr({self: 1.0}, 0.0)

    @property
    def is_integral(self) -> bool:
        """Whether the variable must take integer values."""
        return self.vtype in (VarType.INTEGER, VarType.BINARY)

    # -- arithmetic (delegates to LinExpr) ----------------------------------
    def __add__(self, other):
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-self.to_expr()) + other

    def __mul__(self, coef):
        return self.to_expr() * coef

    __rmul__ = __mul__

    def __truediv__(self, denom):
        return self.to_expr() / denom

    def __neg__(self):
        return self.to_expr() * -1.0

    # -- comparisons build constraints --------------------------------------
    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        return self.to_expr() == other

    def __hash__(self) -> int:  # identity hashing: each Variable is unique
        return id(self)

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, lb={self.lb}, ub={self.ub}, {self.vtype.value})"


class LinExpr:
    """An affine expression ``sum(coef_i * var_i) + constant``.

    Immutable by convention: arithmetic returns new expressions.  Terms with
    zero coefficient are dropped eagerly so expression size tracks true
    sparsity.
    """

    __slots__ = ("terms", "constant")

    def __init__(self, terms: Mapping[Variable, float] | None = None, constant: float = 0.0) -> None:
        self.terms: dict[Variable, float] = {}
        if terms:
            for var, coef in terms.items():
                if coef != 0.0:
                    self.terms[var] = float(coef)
        self.constant = float(constant)

    # -- helpers -------------------------------------------------------------
    @staticmethod
    def _coerce(value) -> "LinExpr":
        """Coerce scalars, variables and expressions to ``LinExpr``."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Variable):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr(None, float(value))
        raise TypeError(f"cannot build a linear expression from {type(value).__name__}")

    def copy(self) -> "LinExpr":
        out = LinExpr(None, self.constant)
        out.terms = dict(self.terms)
        return out

    def value(self, assignment: Mapping[Variable, float]) -> float:
        """Evaluate the expression under a variable assignment."""
        return self.constant + sum(coef * assignment[var] for var, coef in self.terms.items())

    # -- arithmetic -----------------------------------------------------------
    def __add__(self, other) -> "LinExpr":
        other = self._coerce(other)
        out = self.copy()
        out.constant += other.constant
        for var, coef in other.terms.items():
            new = out.terms.get(var, 0.0) + coef
            if new == 0.0:
                out.terms.pop(var, None)
            else:
                out.terms[var] = new
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return (self * -1.0) + other

    def __mul__(self, coef) -> "LinExpr":
        if not isinstance(coef, (int, float)):
            raise TypeError("linear expressions only support scalar multiplication")
        if coef == 0.0:
            return LinExpr()
        out = LinExpr(None, self.constant * coef)
        out.terms = {var: c * coef for var, c in self.terms.items()}
        return out

    __rmul__ = __mul__

    def __truediv__(self, denom) -> "LinExpr":
        if not isinstance(denom, (int, float)):
            raise TypeError("linear expressions only support scalar division")
        return self * (1.0 / denom)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons → constraints --------------------------------------------
    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, ConstraintSense.LE)

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, ConstraintSense.GE)

    def __eq__(self, other) -> "Constraint":  # type: ignore[override]
        return Constraint(self - other, ConstraintSense.EQ)

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


class ConstraintSense(enum.Enum):
    """Relational sense of a constraint, after moving everything left."""

    LE = "<="
    GE = ">="
    EQ = "=="


class Constraint:
    """A normalized linear constraint ``expr (<=|>=|==) 0``.

    The right-hand side is folded into the expression's constant; backends
    read ``lhs_terms (sense) -constant``.
    """

    __slots__ = ("expr", "sense", "name")

    def __init__(self, expr: LinExpr, sense: ConstraintSense, name: str = "") -> None:
        self.expr = expr
        self.sense = sense
        self.name = name

    @property
    def rhs(self) -> float:
        """Right-hand side after moving the constant across the relation."""
        return -self.expr.constant

    def violation(self, assignment: Mapping[Variable, float]) -> float:
        """Amount by which the assignment violates the constraint (0 if satisfied)."""
        lhs = self.expr.value(assignment) - self.expr.constant  # pure linear part
        if self.sense is ConstraintSense.LE:
            return max(0.0, lhs - self.rhs)
        if self.sense is ConstraintSense.GE:
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)

    def __repr__(self) -> str:
        return f"Constraint({self.expr!r} {self.sense.value} 0)"


def lin_sum(items: Iterable) -> LinExpr:
    """Sum variables/expressions/scalars into one ``LinExpr``.

    Unlike built-in :func:`sum`, this accumulates into a single mutable
    expression, so summing ``n`` terms is ``O(n)`` rather than ``O(n^2)``.
    """
    out = LinExpr()
    for item in items:
        piece = LinExpr._coerce(item)
        out.constant += piece.constant
        for var, coef in piece.terms.items():
            new = out.terms.get(var, 0.0) + coef
            if new == 0.0:
                out.terms.pop(var, None)
            else:
                out.terms[var] = new
    return out
