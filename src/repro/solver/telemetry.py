"""Structured solve telemetry and wall-clock deadlines.

Two small primitives shared by every backend:

:class:`Deadline`
    One wall-clock budget created at the top of :func:`repro.solver.solve`
    and threaded through branch-and-bound node loops, Gomory cut rounds,
    simplex pivot loops, and Benders iterations.  Every layer polls the
    same object, so a budget of 0.1 s means 0.1 s for the *whole* solve,
    not 0.1 s per layer, and an expired deadline surfaces as an honest
    ``TIME_LIMIT``/``FEASIBLE`` status with the best incumbent found.

:class:`Telemetry`
    An event hub: backends call :meth:`Telemetry.emit` with an event kind
    and payload; the hub timestamps the event (monotonic seconds since the
    solve started) and fans it out to listeners.  Listeners are plain
    callables taking one :class:`SolveEvent`, or objects exposing
    ``on_event(event)``.  :class:`EventRecorder` is the bundled listener
    that collects events for JSON dumps and summary lines (used by the
    CLI's ``--telemetry`` flag).

Event kinds (``SolveEvent.kind``) emitted by the stack:

``solve_start`` / ``solve_end``
    Bracket one ``solve_compiled`` call; payload carries backend, sizes,
    and the final status.
``phase_start`` / ``phase_end``
    Timed phases (presolve, simplex phase 1/2, root cuts, ...);
    ``phase_end`` carries ``duration`` and work counters such as simplex
    ``pivots``.
``node_open`` / ``node_close`` / ``node_prune``
    Branch-and-bound lifecycle: a node is pushed on the heap, explored,
    or discarded by bound domination.
``lp_warm`` / ``lp_cold``
    One per B&B node LP solve: the relaxation restarted from the parent
    basis (payload: pivots, repair ``mode``) or ran a cold two-phase
    solve (payload: pivots, ``reason``).  The ratio is the warm-hit rate.
``incumbent``
    A new best integer-feasible solution (payload: objective, source).
``cut_round``
    One Gomory cut-generation round at the root (payload: cuts added).
``benders_iteration``
    One L-shaped master/subproblem round (payload: lower, upper, cuts).
``benders_parallel``
    Scenario subproblems fanned out across processes for one iteration
    (payload: scenarios, workers, warm-started count).
``backend_degraded``
    The ``"auto"`` backend fell back along its chain (HiGHS -> pure
    simplex), e.g. because SciPy is not importable.
``warm_start_rejected``
    A supplied initial incumbent failed the feasibility check.
``deadline_exceeded``
    A layer observed the shared deadline expiring and is unwinding.
``fuzz_case`` / ``fuzz_disagreement`` / ``fuzz_summary``
    Differential-fuzzing progress from :mod:`repro.verify.fuzz`: one event
    per generated case (family, verdict), one per oracle divergence, and
    one final tally.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

# jsonable moved to repro.serialize (shared with stdlib-only consumers);
# re-exported here so existing call sites keep working.
from repro.serialize import jsonable

__all__ = [
    "EVENT_KINDS",
    "Deadline",
    "SolveEvent",
    "Telemetry",
    "EventRecorder",
    "jsonable",
]

EVENT_KINDS = frozenset(
    {
        "solve_start",
        "solve_end",
        "phase_start",
        "phase_end",
        "node_open",
        "node_close",
        "node_prune",
        "lp_warm",
        "lp_cold",
        "incumbent",
        "cut_round",
        "benders_iteration",
        "benders_parallel",
        "backend_degraded",
        "warm_start_rejected",
        "deadline_exceeded",
        "fuzz_case",
        "fuzz_disagreement",
        "fuzz_summary",
    }
)


class Deadline:
    """A wall-clock budget measured from construction time.

    The object is intentionally tiny — ``expired()`` is polled inside
    pivot/node loops, so it does one clock read and one subtraction.
    ``Deadline(math.inf)`` never expires and costs the same to poll.
    """

    __slots__ = ("budget", "_start", "_clock")

    def __init__(self, budget: float = math.inf, clock=time.monotonic) -> None:
        if budget < 0:
            raise ValueError(f"deadline budget must be nonnegative, got {budget}")
        self.budget = float(budget)
        self._clock = clock
        self._start = clock()

    @classmethod
    def never(cls) -> "Deadline":
        """A deadline that never expires (identity element for threading)."""
        return cls(math.inf)

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left in the budget (negative once expired)."""
        return self.budget - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def tightened(self, budget: float) -> "Deadline":
        """This deadline, or a fresh one over ``budget`` if that is sooner.

        Used to merge a caller-supplied deadline with a per-layer option
        such as ``BranchAndBoundOptions.time_limit`` without resetting the
        caller's clock.
        """
        if budget >= self.remaining():
            return self
        fresh = Deadline(budget, clock=self._clock)
        return fresh

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(budget={self.budget}, remaining={self.remaining():.3f})"


@dataclass(frozen=True)
class SolveEvent:
    """One telemetry record: ``kind`` (see :data:`EVENT_KINDS`), a
    timestamp ``t`` in seconds since the owning :class:`Telemetry` was
    created, and a free-form ``data`` payload."""

    kind: str
    t: float
    data: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "t": self.t, **self.data}


def _as_callback(listener):
    """Accept plain callables or objects with an ``on_event`` method."""
    on_event = getattr(listener, "on_event", None)
    if callable(on_event):
        return on_event
    if callable(listener):
        return listener
    raise TypeError(
        f"telemetry listener must be callable or define on_event(); got {listener!r}"
    )


class Telemetry:
    """Timestamps events and fans them out to listeners.

    Backends receive ``telemetry: Telemetry | None``; passing ``None``
    (the default when no listener is attached) keeps the hot loops free
    of any callback overhead, so guard emission sites with
    ``if telemetry:``.
    """

    __slots__ = ("_callbacks", "_clock", "_t0", "_last_t")

    def __init__(self, listeners=(), clock=time.monotonic) -> None:
        if not isinstance(listeners, (list, tuple)):
            listeners = (listeners,)
        self._callbacks = [_as_callback(cb) for cb in listeners]
        self._clock = clock
        self._t0 = clock()
        self._last_t = 0.0

    @classmethod
    def from_listener(cls, listener) -> "Telemetry | None":
        """``None`` passthrough so call sites stay one-liners."""
        if listener is None:
            return None
        if isinstance(listener, Telemetry):
            return listener
        return cls(listeners=(listener,))

    def emit(self, kind: str, **data) -> None:
        """Timestamp and dispatch one event to every listener."""
        # Clamp to the last emitted timestamp so event streams are monotone
        # even under clock adjustments or sub-resolution spacing.
        t = max(self._clock() - self._t0, self._last_t)
        self._last_t = t
        event = SolveEvent(kind=kind, t=t, data=data)
        for cb in self._callbacks:
            cb(event)

    @contextmanager
    def phase(self, name: str, **data):
        """Bracket a timed phase; yields a dict merged into ``phase_end``
        so the body can attach counters (pivots, cuts, ...)."""
        self.emit("phase_start", phase=name, **data)
        start = self._clock()
        extra: dict = {}
        try:
            yield extra
        finally:
            self.emit(
                "phase_end", phase=name, duration=self._clock() - start, **data, **extra
            )


class EventRecorder:
    """Listener that keeps every event, with JSON/summary convenience.

    >>> rec = EventRecorder()
    >>> solve(model, listener=rec)          # doctest: +SKIP
    >>> rec.summary_line()                  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self.events: list[SolveEvent] = []

    def on_event(self, event: SolveEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return counts

    def of_kind(self, kind: str) -> list[SolveEvent]:
        return [ev for ev in self.events if ev.kind == kind]

    def to_dicts(self) -> list[dict]:
        """Events as strictly-JSON-safe dicts (see :func:`jsonable`)."""
        return [jsonable(ev.to_dict()) for ev in self.events]

    def to_json(self, indent: int | None = None) -> str:
        # allow_nan=False guarantees the output parses everywhere; jsonable
        # already mapped non-finite floats and exotic payload types.
        return json.dumps(self.to_dicts(), indent=indent, allow_nan=False)

    def summary(self) -> dict:
        """Aggregate view used by the CLI summary line."""
        counts = self.kinds()
        incumbents = self.of_kind("incumbent")
        phases = {}
        for ev in self.of_kind("phase_end"):
            name = ev.data.get("phase", "?")
            phases[name] = phases.get(name, 0.0) + float(ev.data.get("duration", 0.0))
        return {
            "events": len(self.events),
            "wall_time": self.events[-1].t if self.events else 0.0,
            "nodes": counts.get("node_close", 0),
            "pruned": counts.get("node_prune", 0),
            "incumbents": len(incumbents),
            "best_objective": incumbents[-1].data.get("objective") if incumbents else None,
            "cut_rounds": counts.get("cut_round", 0),
            "benders_iterations": counts.get("benders_iteration", 0),
            "degradations": counts.get("backend_degraded", 0),
            "phase_seconds": phases,
        }

    def summary_line(self) -> str:
        s = self.summary()
        bits = [f"events={s['events']}", f"wall={s['wall_time']:.3f}s"]
        if s["nodes"]:
            bits.append(f"nodes={s['nodes']} (pruned {s['pruned']})")
        if s["incumbents"]:
            bits.append(f"incumbents={s['incumbents']} best={s['best_objective']:.6g}")
        if s["cut_rounds"]:
            bits.append(f"cut_rounds={s['cut_rounds']}")
        if s["benders_iterations"]:
            bits.append(f"benders_iters={s['benders_iterations']}")
        if s["degradations"]:
            bits.append(f"degraded={s['degradations']}")
        if s["phase_seconds"]:
            top = max(s["phase_seconds"], key=s["phase_seconds"].get)
            bits.append(f"hottest_phase={top}:{s['phase_seconds'][top]:.3f}s")
        return "telemetry: " + " ".join(bits)
