"""Presolve reductions for compiled problems.

Lightweight, always-safe reductions applied before handing a problem to a
backend.  These matter for the pure simplex backend (smaller tableaus pivot
faster) and for branch-and-bound (tighter binary bounds prune earlier):

* **singleton rows** — a constraint touching one variable becomes a bound;
* **bound-implied integer rounding** — integer variables get their bounds
  rounded inward;
* **fixed-variable detection** — ``lb == ub`` columns can be substituted out;
* **redundant row removal** — rows whose activity range already satisfies
  the constraint for any feasible point are dropped;
* **infeasibility detection** — crossed bounds or unsatisfiable rows are
  reported immediately.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace as dc_replace

import numpy as np

from .model import CompiledProblem

__all__ = ["PresolveResult", "presolve"]


@dataclass
class PresolveResult:
    """Outcome of presolve.

    Attributes
    ----------
    problem:
        Reduced problem (same variable count/order — reductions here adjust
        bounds and delete rows, they never renumber columns, so solutions
        map back 1:1).
    infeasible:
        Set when presolve proves the problem has no feasible point.
    bounds_tightened / rows_removed:
        Reduction counters for diagnostics.
    """

    problem: CompiledProblem
    infeasible: bool = False
    bounds_tightened: int = 0
    rows_removed: int = 0


def _activity_bounds(row: np.ndarray, lb: np.ndarray, ub: np.ndarray) -> tuple[float, float]:
    """Min/max of ``row @ x`` over the box ``[lb, ub]`` (inf-aware)."""
    pos = row > 0
    neg = row < 0
    lo = 0.0
    hi = 0.0
    if pos.any():
        lo += float(np.dot(row[pos], lb[pos]))
        hi += float(np.dot(row[pos], ub[pos]))
    if neg.any():
        lo += float(np.dot(row[neg], ub[neg]))
        hi += float(np.dot(row[neg], lb[neg]))
    return lo, hi


def presolve(problem: CompiledProblem, max_passes: int = 4) -> PresolveResult:
    """Apply the reduction loop until a fixed point or ``max_passes``."""
    lb = problem.lb.copy()
    ub = problem.ub.copy()
    A_ub = problem.A_ub.copy()
    b_ub = problem.b_ub.copy()
    int_mask = problem.integrality.astype(bool)
    tightened = 0
    removed = 0

    # Integer bound rounding is valid once up front (and after tightening).
    def round_integer_bounds() -> None:
        nonlocal tightened
        if not int_mask.any():
            return
        new_lb = np.where(int_mask, np.ceil(lb - 1e-9), lb)
        new_ub = np.where(int_mask, np.floor(ub + 1e-9), ub)
        tightened += int(np.sum(new_lb > lb) + np.sum(new_ub < ub))
        lb[:] = new_lb
        ub[:] = new_ub

    round_integer_bounds()
    if np.any(lb > ub + 1e-9):
        return PresolveResult(problem, infeasible=True, bounds_tightened=tightened)

    for _ in range(max_passes):
        changed = False
        keep = np.ones(A_ub.shape[0], dtype=bool)
        for i in range(A_ub.shape[0]):
            row = A_ub[i]
            nz = np.nonzero(row)[0]
            if nz.size == 0:
                if b_ub[i] < -1e-9:
                    return PresolveResult(problem, infeasible=True, bounds_tightened=tightened)
                keep[i] = False
                removed += 1
                changed = True
                continue
            if nz.size == 1:
                # singleton: a*x <= b  ->  bound on x
                j = int(nz[0])
                a = row[j]
                if a > 0:
                    new_ub = b_ub[i] / a
                    if new_ub < ub[j] - 1e-12:
                        ub[j] = new_ub
                        tightened += 1
                        changed = True
                else:
                    new_lb = b_ub[i] / a
                    if new_lb > lb[j] + 1e-12:
                        lb[j] = new_lb
                        tightened += 1
                        changed = True
                keep[i] = False
                removed += 1
                continue
            lo, hi = _activity_bounds(row, lb, ub)
            if lo > b_ub[i] + 1e-7:
                return PresolveResult(problem, infeasible=True, bounds_tightened=tightened)
            if hi <= b_ub[i] + 1e-12:
                keep[i] = False  # redundant for every feasible point
                removed += 1
                changed = True
        if not keep.all():
            A_ub = A_ub[keep]
            b_ub = b_ub[keep]
        round_integer_bounds()
        if np.any(lb > ub + 1e-9):
            return PresolveResult(problem, infeasible=True, bounds_tightened=tightened)
        if not changed:
            break

    reduced = dc_replace(problem, A_ub=A_ub, b_ub=b_ub, lb=lb, ub=ub)
    return PresolveResult(reduced, bounds_tightened=tightened, rows_removed=removed)
