"""Common result/status types shared by every solver backend."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SolverStatus", "SolverResult"]


class SolverStatus(enum.Enum):
    """Termination status taxonomy (a deliberate superset of what each
    backend reports natively, so callers can switch backends freely)."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    NODE_LIMIT = "node_limit"
    TIME_LIMIT = "time_limit"
    FEASIBLE = "feasible"  # incumbent found but optimality not proven
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        return self in (SolverStatus.OPTIMAL, SolverStatus.FEASIBLE)


@dataclass
class SolverResult:
    """Outcome of an LP/MILP solve.

    Attributes
    ----------
    status:
        Termination status.
    x:
        Primal solution in the *original* variable order of the compiled
        problem (``None`` unless ``status.has_solution``).
    objective:
        Objective value in the model's own sense.
    bound:
        Best proven bound on the optimum (equals ``objective`` at
        ``OPTIMAL``; for MILP it is the global dual bound).
    iterations / nodes:
        Work counters (simplex pivots, branch-and-bound nodes).
    extra:
        Backend-specific diagnostics (e.g. number of Gomory cuts added).
    """

    status: SolverStatus
    x: np.ndarray | None = None
    objective: float = float("nan")
    bound: float = float("nan")
    iterations: int = 0
    nodes: int = 0
    extra: dict = field(default_factory=dict)

    def value_of(self, var) -> float:
        """Value of a model :class:`~repro.solver.expr.Variable` in ``x``."""
        if self.x is None:
            raise ValueError(f"no solution available (status={self.status.value})")
        return float(self.x[var.index])

    @property
    def gap(self) -> float:
        """Relative optimality gap between incumbent and bound."""
        if np.isnan(self.objective) or np.isnan(self.bound):
            return float("inf")
        denom = max(1.0, abs(self.objective))
        return abs(self.objective - self.bound) / denom
