"""Branch-and-bound MILP solver over pluggable LP relaxation backends.

The paper notes that DRRP "can be solved using the branch-and-bound (B&B)
method in most optimization software packages"; this module is that method,
built from scratch:

* best-first search on the LP relaxation bound (a heap of open nodes);
* branching on the most-fractional integer variable (ties broken by largest
  objective coefficient, which empirically tightens lot-sizing instances
  quickly because the setup binaries carry the fixed rental cost);
* a rounding heuristic at every node to find incumbents early;
* optional Gomory fractional cuts at the root (see :mod:`repro.solver.cuts`);
* relative-gap, node-count and wall-clock termination criteria;
* LP warm starts: each open node carries its parent's optimal basis (a
  :class:`~repro.solver.simplex.SimplexBasis` — three small index arrays,
  not a tableau), and child relaxations restart simplex phase 2 from it,
  repairing primal feasibility with the bounded dual simplex when the
  branching bound cut the parent vertex off.  Every LP solve emits an
  ``lp_warm`` or ``lp_cold`` telemetry event so the obs layer can report
  the warm-hit rate.  The bases are engine-portable: under the default
  revised engine (see :mod:`repro.solver.revised`) they additionally
  carry the parent's basis-inverse hint, so a child re-solve skips the
  factorization entirely.

Nodes store bound vectors plus the parent basis (small index arrays), so
memory stays linear in the number of open nodes.
"""

from __future__ import annotations

import heapq
import inspect
import itertools
import math
import time
import warnings
from dataclasses import dataclass, replace as dc_replace
from typing import Callable

import numpy as np

from .model import CompiledProblem
from .result import SolverResult, SolverStatus
from .telemetry import Deadline, Telemetry

__all__ = ["BranchAndBoundOptions", "branch_and_bound"]

_INT_TOL = 1e-6


@dataclass
class BranchAndBoundOptions:
    """Tuning knobs for :func:`branch_and_bound`.

    Attributes
    ----------
    rel_gap:
        Stop when ``(incumbent - bound)/max(1, |incumbent|)`` falls below.
    node_limit / time_limit:
        Hard work limits; the best incumbent (if any) is returned with
        status ``FEASIBLE``.
    use_root_cuts:
        Add Gomory fractional cuts at the root node (requires the pure
        simplex backend, which exposes its tableau).
    max_root_cut_rounds:
        Number of cut-generation rounds at the root.
    rounding_heuristic:
        Try rounding each LP-fractional point to a feasible incumbent.
    warm_start_lps:
        Re-solve child LP relaxations from the parent node's optimal basis
        when the LP backend supports it (``lp_solver`` accepts a
        ``warm_start`` keyword, as :func:`repro.solver.simplex.solve_lp_simplex`
        does).  Disable to force every node through a cold two-phase solve
        — the benchmark baseline uses this to measure the warm-start win.
    initial_incumbent:
        A known-feasible solution vector used to prune from the first node
        (warm start) — e.g. the Wagner-Whitin plan for a DRRP instance.
        A wrong-shaped vector raises :class:`ValueError`; a vector that
        fails the feasibility check is dropped with a warning and a
        ``warm_start_rejected`` telemetry event (never silently).
    """

    rel_gap: float = 1e-7
    node_limit: int = 200_000
    time_limit: float = math.inf
    use_root_cuts: bool = False
    max_root_cut_rounds: int = 5
    rounding_heuristic: bool = True
    warm_start_lps: bool = True
    initial_incumbent: np.ndarray | None = None


def _fractional_candidates(x: np.ndarray, int_mask: np.ndarray) -> np.ndarray:
    """Indices of integer variables whose LP value is fractional."""
    frac = np.abs(x - np.round(x))
    return np.nonzero(int_mask & (frac > _INT_TOL))[0]


def _select_branch_var(x: np.ndarray, candidates: np.ndarray, c: np.ndarray) -> int:
    """Most-fractional branching with objective-coefficient tie-break."""
    frac = np.abs(x[candidates] - np.round(x[candidates]))
    dist = np.abs(frac - 0.5)
    best = dist.min()
    ties = candidates[dist <= best + 1e-12]
    return int(ties[np.argmax(np.abs(c[ties]))])


def _try_rounding(problem: CompiledProblem, x: np.ndarray, int_mask: np.ndarray) -> np.ndarray | None:
    """Round integer variables and re-check feasibility (cheap incumbent probe)."""
    x_round = x.copy()
    x_round[int_mask] = np.round(x_round[int_mask])
    np.clip(x_round, problem.lb, problem.ub, out=x_round)
    if problem.is_feasible(x_round, tol=1e-6):
        return x_round
    return None


def branch_and_bound(
    problem: CompiledProblem,
    lp_solver: Callable[[CompiledProblem], SolverResult],
    options: BranchAndBoundOptions | None = None,
    deadline: Deadline | None = None,
    telemetry: Telemetry | None = None,
) -> SolverResult:
    """Solve a compiled MILP by LP-based branch and bound.

    Parameters
    ----------
    problem:
        Compiled model (its ``integrality`` mask drives branching; if the
        mask is empty this reduces to a single LP solve).
    lp_solver:
        Function solving the LP relaxation of a compiled problem, e.g.
        :func:`repro.solver.scipy_backend.solve_lp_scipy` or
        :func:`repro.solver.simplex.solve_lp_simplex`.
    deadline:
        Shared wall-clock budget.  Checked at the top of the node loop
        *and between child LP solves*, so two slow child relaxations can
        overrun the budget by at most one LP solve, not a whole node.
        Merged with ``options.time_limit`` (whichever is sooner wins).
    telemetry:
        Optional event hub receiving node open/close/prune, incumbent,
        and deadline events.
    """
    opts = options or BranchAndBoundOptions()
    int_mask = problem.integrality.astype(bool)

    dl = Deadline(opts.time_limit) if deadline is None else deadline.tightened(opts.time_limit)

    work = problem
    if opts.use_root_cuts:
        from .cuts import strengthen_with_gomory_cuts

        work = strengthen_with_gomory_cuts(
            work, max_rounds=opts.max_root_cut_rounds, deadline=dl, telemetry=telemetry
        )

    # Relaxation template: integrality cleared, bounds replaced per node.
    counter = itertools.count()  # heap tie-breaker
    incumbent_x: np.ndarray | None = None
    incumbent_obj = math.inf
    best_bound = -math.inf  # tightened to the root relaxation below
    total_lp_iters = 0
    nodes_explored = 0
    nodes_pruned = 0
    lp_warm_hits = 0
    lp_cold_solves = 0

    try:
        supports_warm = "warm_start" in inspect.signature(lp_solver).parameters
    except (TypeError, ValueError):  # builtins / C callables
        supports_warm = False
    use_warm = opts.warm_start_lps and supports_warm

    def lp_at(lb: np.ndarray, ub: np.ndarray, warm=None) -> SolverResult:
        nonlocal total_lp_iters, lp_warm_hits, lp_cold_solves
        node_problem = dc_replace(work, lb=lb, ub=ub, integrality=np.zeros_like(work.integrality))
        lp_t0 = time.perf_counter() if telemetry else 0.0
        if use_warm:
            res = lp_solver(node_problem, warm_start=warm)
        else:
            res = lp_solver(node_problem)
        total_lp_iters += res.iterations
        winfo = res.extra.get("warm") if isinstance(res.extra, dict) else None
        warm_used = bool(winfo and winfo.get("used"))
        if warm_used:
            lp_warm_hits += 1
        else:
            lp_cold_solves += 1
        if telemetry:
            lp_elapsed = time.perf_counter() - lp_t0
            if warm_used:
                telemetry.emit(
                    "lp_warm", node=nodes_explored, pivots=res.iterations,
                    mode=winfo.get("mode"), duration=lp_elapsed,
                )
            else:
                reason = (
                    winfo.get("reason", "?") if winfo
                    else ("no_warm_start" if warm is None else "backend")
                )
                telemetry.emit(
                    "lp_cold", node=nodes_explored, pivots=res.iterations,
                    reason=reason, duration=lp_elapsed,
                )
        return res

    def set_incumbent(obj: float, x: np.ndarray, source: str) -> None:
        nonlocal incumbent_obj, incumbent_x
        incumbent_obj, incumbent_x = obj, x
        if telemetry:
            # Relative gap against the global dual bound, so listeners can
            # chart incumbent-gap-over-time without re-deriving B&B state.
            gap = (
                (incumbent_obj - best_bound) / max(1.0, abs(incumbent_obj))
                if math.isfinite(best_bound)
                else math.inf
            )
            telemetry.emit(
                "incumbent",
                objective=problem.objective_value(x[: problem.num_vars]),
                source=source,
                node=nodes_explored,
                bound=best_bound,
                gap=gap,
            )

    if opts.initial_incumbent is not None:
        x0 = np.asarray(opts.initial_incumbent, dtype=float)
        if x0.shape != (work.num_vars,):
            raise ValueError(
                f"initial_incumbent has shape {x0.shape}, expected "
                f"({work.num_vars},); warm starts must be given in the "
                "variable order of the (presolved) compiled problem"
            )
        # Clip into the working bounds first: presolve tightens bounds
        # (integer rounding, singleton rows), and a warm start that was
        # feasible for the original model can land a hair outside them.
        # Feasibility is then checked against `problem` — before Gomory
        # cuts — so valid incumbents are never lost to cut-row noise.
        x0 = np.clip(x0, work.lb, work.ub)
        if problem.is_feasible(x0, tol=1e-6):
            set_incumbent(float(work.c @ x0) + work.c0, x0.copy(), "warm_start")
        else:
            warnings.warn(
                "branch_and_bound: initial_incumbent failed the feasibility "
                "check and is ignored",
                stacklevel=2,
            )
            if telemetry:
                telemetry.emit("warm_start_rejected", reason="infeasible")

    root = lp_at(work.lb.copy(), work.ub.copy())
    if root.status is SolverStatus.INFEASIBLE:
        return SolverResult(status=SolverStatus.INFEASIBLE, nodes=1, iterations=total_lp_iters)
    if root.status is SolverStatus.UNBOUNDED:
        return SolverResult(status=SolverStatus.UNBOUNDED, nodes=1, iterations=total_lp_iters)
    if not root.status.has_solution:
        if root.status is SolverStatus.TIME_LIMIT and incumbent_x is not None:
            # Deadline tripped inside the root LP but the warm start stands.
            root_fail = SolverStatus.FEASIBLE
            x_out = incumbent_x[: problem.num_vars]
            return SolverResult(
                status=root_fail, x=x_out, objective=problem.objective_value(x_out),
                nodes=1, iterations=total_lp_iters,
            )
        return SolverResult(status=root.status, nodes=1, iterations=total_lp_iters)

    # Minimization internally: CompiledProblem.objective_value undoes max flips,
    # so compare on the internal (minimize) scale c@x + c0.
    def internal_obj(x: np.ndarray) -> float:
        return float(work.c @ x) + work.c0

    # Heap entries: (bound, tie-break id, lb, ub, x_lp, parent_basis).  The
    # basis rides along so each child LP can restart phase 2 from the vertex
    # its parent ended on instead of re-running phase 1 from scratch.
    root_basis = root.extra.get("basis") if isinstance(root.extra, dict) else None
    heap: list[tuple] = []
    heapq.heappush(
        heap,
        (internal_obj(root.x), next(counter), work.lb.copy(), work.ub.copy(), root.x, root_basis),
    )
    if telemetry:
        telemetry.emit("node_open", node=0, bound=internal_obj(root.x), depth=0)

    best_bound = internal_obj(root.x)

    def lp_stats() -> dict:
        return {"lp_warm": lp_warm_hits, "lp_cold": lp_cold_solves}

    def finish(status: SolverStatus) -> SolverResult:
        if incumbent_x is not None:
            x_out = incumbent_x[: problem.num_vars]
            obj = problem.objective_value(x_out)
            bound_internal = min(best_bound, incumbent_obj)
            bound = -bound_internal if problem.maximize else bound_internal
            return SolverResult(
                status=status, x=x_out, objective=obj, bound=bound,
                nodes=nodes_explored, iterations=total_lp_iters, extra=lp_stats(),
            )
        return SolverResult(
            status=status, nodes=nodes_explored, iterations=total_lp_iters, extra=lp_stats()
        )

    def out_of_time() -> SolverResult:
        if telemetry:
            telemetry.emit(
                "deadline_exceeded", where="branch_and_bound",
                nodes=nodes_explored, open_nodes=len(heap),
            )
        return finish(SolverStatus.FEASIBLE if incumbent_x is not None else SolverStatus.TIME_LIMIT)

    while heap:
        if dl.expired():
            return out_of_time()
        if nodes_explored >= opts.node_limit:
            return finish(SolverStatus.FEASIBLE if incumbent_x is not None else SolverStatus.NODE_LIMIT)

        bound, node_id, lb, ub, x_lp, node_basis = heapq.heappop(heap)
        best_bound = bound
        if bound >= incumbent_obj - opts.rel_gap * max(1.0, abs(incumbent_obj)):
            # Heap is bound-ordered: everything left is dominated.
            if telemetry:
                telemetry.emit(
                    "node_prune", node=node_id, bound=bound,
                    incumbent=incumbent_obj, remaining=len(heap),
                )
            nodes_pruned += 1 + len(heap)
            best_bound = incumbent_obj
            break
        nodes_explored += 1
        if telemetry:
            telemetry.emit("node_close", node=node_id, bound=bound, explored=nodes_explored)

        candidates = _fractional_candidates(x_lp, int_mask)
        if candidates.size == 0:
            if bound < incumbent_obj:
                set_incumbent(bound, x_lp, "lp_integral")
            continue

        if opts.rounding_heuristic:
            rounded = _try_rounding(work, x_lp, int_mask)
            if rounded is not None:
                obj_r = internal_obj(rounded)
                if obj_r < incumbent_obj:
                    set_incumbent(obj_r, rounded, "rounding")

        j = _select_branch_var(x_lp, candidates, work.c)
        floor_val = math.floor(x_lp[j] + _INT_TOL)

        for lo, hi in (
            (lb[j], float(floor_val)),       # down child: x_j <= floor
            (float(floor_val) + 1.0, ub[j]),  # up child:   x_j >= floor+1
        ):
            # A node spawns two LP solves; re-check the budget between them
            # so one slow child cannot drag the other past the deadline.
            if dl.expired():
                return out_of_time()
            if lo > hi:
                continue
            lb2, ub2 = lb.copy(), ub.copy()
            lb2[j], ub2[j] = lo, hi
            res = lp_at(lb2, ub2, warm=node_basis)
            if not res.status.has_solution:
                if res.status is SolverStatus.TIME_LIMIT:
                    return out_of_time()
                continue
            child_bound = internal_obj(res.x)
            if child_bound < incumbent_obj - 1e-12:
                child_id = next(counter)
                child_basis = res.extra.get("basis") if isinstance(res.extra, dict) else None
                heapq.heappush(heap, (child_bound, child_id, lb2, ub2, res.x, child_basis))
                if telemetry:
                    telemetry.emit("node_open", node=child_id, bound=child_bound, branch_var=j)
            else:
                nodes_pruned += 1
                if telemetry:
                    telemetry.emit("node_prune", node=-1, bound=child_bound, incumbent=incumbent_obj)

    if incumbent_x is not None:
        return finish(SolverStatus.OPTIMAL)
    return SolverResult(
        status=SolverStatus.INFEASIBLE, nodes=nodes_explored, iterations=total_lp_iters,
        extra=lp_stats(),
    )
