"""Branch-and-bound MILP solver over pluggable LP relaxation backends.

The paper notes that DRRP "can be solved using the branch-and-bound (B&B)
method in most optimization software packages"; this module is that method,
built from scratch:

* best-first search on the LP relaxation bound (a heap of open nodes);
* branching on the most-fractional integer variable (ties broken by largest
  objective coefficient, which empirically tightens lot-sizing instances
  quickly because the setup binaries carry the fixed rental cost);
* a rounding heuristic at every node to find incumbents early;
* optional Gomory fractional cuts at the root (see :mod:`repro.solver.cuts`);
* relative-gap, node-count and wall-clock termination criteria.

Nodes store only bound vectors (two small arrays), not tableaus, so memory
stays linear in the number of open nodes.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, replace as dc_replace
from typing import Callable

import numpy as np

from .model import CompiledProblem
from .result import SolverResult, SolverStatus

__all__ = ["BranchAndBoundOptions", "branch_and_bound"]

_INT_TOL = 1e-6


@dataclass
class BranchAndBoundOptions:
    """Tuning knobs for :func:`branch_and_bound`.

    Attributes
    ----------
    rel_gap:
        Stop when ``(incumbent - bound)/max(1, |incumbent|)`` falls below.
    node_limit / time_limit:
        Hard work limits; the best incumbent (if any) is returned with
        status ``FEASIBLE``.
    use_root_cuts:
        Add Gomory fractional cuts at the root node (requires the pure
        simplex backend, which exposes its tableau).
    max_root_cut_rounds:
        Number of cut-generation rounds at the root.
    rounding_heuristic:
        Try rounding each LP-fractional point to a feasible incumbent.
    initial_incumbent:
        A known-feasible solution vector used to prune from the first node
        (warm start) — e.g. the Wagner-Whitin plan for a DRRP instance.
        Silently ignored if it fails the feasibility check.
    """

    rel_gap: float = 1e-7
    node_limit: int = 200_000
    time_limit: float = math.inf
    use_root_cuts: bool = False
    max_root_cut_rounds: int = 5
    rounding_heuristic: bool = True
    initial_incumbent: np.ndarray | None = None


def _fractional_candidates(x: np.ndarray, int_mask: np.ndarray) -> np.ndarray:
    """Indices of integer variables whose LP value is fractional."""
    frac = np.abs(x - np.round(x))
    return np.nonzero(int_mask & (frac > _INT_TOL))[0]


def _select_branch_var(x: np.ndarray, candidates: np.ndarray, c: np.ndarray) -> int:
    """Most-fractional branching with objective-coefficient tie-break."""
    frac = np.abs(x[candidates] - np.round(x[candidates]))
    dist = np.abs(frac - 0.5)
    best = dist.min()
    ties = candidates[dist <= best + 1e-12]
    return int(ties[np.argmax(np.abs(c[ties]))])


def _try_rounding(problem: CompiledProblem, x: np.ndarray, int_mask: np.ndarray) -> np.ndarray | None:
    """Round integer variables and re-check feasibility (cheap incumbent probe)."""
    x_round = x.copy()
    x_round[int_mask] = np.round(x_round[int_mask])
    np.clip(x_round, problem.lb, problem.ub, out=x_round)
    if problem.is_feasible(x_round, tol=1e-6):
        return x_round
    return None


def branch_and_bound(
    problem: CompiledProblem,
    lp_solver: Callable[[CompiledProblem], SolverResult],
    options: BranchAndBoundOptions | None = None,
) -> SolverResult:
    """Solve a compiled MILP by LP-based branch and bound.

    Parameters
    ----------
    problem:
        Compiled model (its ``integrality`` mask drives branching; if the
        mask is empty this reduces to a single LP solve).
    lp_solver:
        Function solving the LP relaxation of a compiled problem, e.g.
        :func:`repro.solver.scipy_backend.solve_lp_scipy` or
        :func:`repro.solver.simplex.solve_lp_simplex`.
    """
    opts = options or BranchAndBoundOptions()
    int_mask = problem.integrality.astype(bool)

    work = problem
    if opts.use_root_cuts:
        from .cuts import strengthen_with_gomory_cuts

        work = strengthen_with_gomory_cuts(work, max_rounds=opts.max_root_cut_rounds)

    # Relaxation template: integrality cleared, bounds replaced per node.
    start = time.monotonic()
    counter = itertools.count()  # heap tie-breaker
    incumbent_x: np.ndarray | None = None
    incumbent_obj = math.inf
    total_lp_iters = 0
    nodes_explored = 0

    def lp_at(lb: np.ndarray, ub: np.ndarray) -> SolverResult:
        nonlocal total_lp_iters
        node_problem = dc_replace(work, lb=lb, ub=ub, integrality=np.zeros_like(work.integrality))
        res = lp_solver(node_problem)
        total_lp_iters += res.iterations
        return res

    if opts.initial_incumbent is not None:
        x0 = np.asarray(opts.initial_incumbent, dtype=float)
        if x0.shape == (work.num_vars,) and work.is_feasible(x0, tol=1e-6):
            incumbent_x = x0.copy()
            incumbent_obj = float(work.c @ x0) + work.c0

    root = lp_at(work.lb.copy(), work.ub.copy())
    if root.status is SolverStatus.INFEASIBLE:
        return SolverResult(status=SolverStatus.INFEASIBLE, nodes=1, iterations=total_lp_iters)
    if root.status is SolverStatus.UNBOUNDED:
        return SolverResult(status=SolverStatus.UNBOUNDED, nodes=1, iterations=total_lp_iters)
    if not root.status.has_solution:
        return SolverResult(status=root.status, nodes=1, iterations=total_lp_iters)

    # Minimization internally: CompiledProblem.objective_value undoes max flips,
    # so compare on the internal (minimize) scale c@x + c0.
    def internal_obj(x: np.ndarray) -> float:
        return float(work.c @ x) + work.c0

    heap: list[tuple[float, int, np.ndarray, np.ndarray, np.ndarray]] = []
    heapq.heappush(heap, (internal_obj(root.x), next(counter), work.lb.copy(), work.ub.copy(), root.x))

    best_bound = internal_obj(root.x)

    def finish(status: SolverStatus) -> SolverResult:
        if incumbent_x is not None:
            x_out = incumbent_x[: problem.num_vars]
            obj = problem.objective_value(x_out)
            bound_internal = min(best_bound, incumbent_obj)
            bound = -bound_internal if problem.maximize else bound_internal
            return SolverResult(
                status=status, x=x_out, objective=obj, bound=bound,
                nodes=nodes_explored, iterations=total_lp_iters,
            )
        return SolverResult(status=status, nodes=nodes_explored, iterations=total_lp_iters)

    while heap:
        if time.monotonic() - start > opts.time_limit:
            return finish(SolverStatus.FEASIBLE if incumbent_x is not None else SolverStatus.TIME_LIMIT)
        if nodes_explored >= opts.node_limit:
            return finish(SolverStatus.FEASIBLE if incumbent_x is not None else SolverStatus.NODE_LIMIT)

        bound, _, lb, ub, x_lp = heapq.heappop(heap)
        best_bound = bound
        if bound >= incumbent_obj - opts.rel_gap * max(1.0, abs(incumbent_obj)):
            # Heap is bound-ordered: everything left is dominated.
            best_bound = incumbent_obj
            break
        nodes_explored += 1

        candidates = _fractional_candidates(x_lp, int_mask)
        if candidates.size == 0:
            if bound < incumbent_obj:
                incumbent_obj, incumbent_x = bound, x_lp
            continue

        if opts.rounding_heuristic:
            rounded = _try_rounding(work, x_lp, int_mask)
            if rounded is not None:
                obj_r = internal_obj(rounded)
                if obj_r < incumbent_obj:
                    incumbent_obj, incumbent_x = obj_r, rounded

        j = _select_branch_var(x_lp, candidates, work.c)
        floor_val = math.floor(x_lp[j] + _INT_TOL)

        for lo, hi in (
            (lb[j], float(floor_val)),       # down child: x_j <= floor
            (float(floor_val) + 1.0, ub[j]),  # up child:   x_j >= floor+1
        ):
            if lo > hi:
                continue
            lb2, ub2 = lb.copy(), ub.copy()
            lb2[j], ub2[j] = lo, hi
            res = lp_at(lb2, ub2)
            if not res.status.has_solution:
                continue
            child_bound = internal_obj(res.x)
            if child_bound < incumbent_obj - 1e-12:
                heapq.heappush(heap, (child_bound, next(counter), lb2, ub2, res.x))

    if incumbent_x is not None:
        return finish(SolverStatus.OPTIMAL)
    return SolverResult(status=SolverStatus.INFEASIBLE, nodes=nodes_explored, iterations=total_lp_iters)
