"""Optimization substrate: modeling layer, LP/MILP solvers, decomposition.

Public surface:

* :class:`Model`, :class:`Variable`, :func:`lin_sum` — build linear models.
* :func:`solve` / :func:`solve_compiled` — solve with a chosen backend.
* :class:`SolverResult`, :class:`SolverStatus` — uniform outcomes.
* :func:`branch_and_bound`, :class:`BranchAndBoundOptions` — the MILP engine.
* :class:`Deadline`, :class:`Telemetry`, :class:`EventRecorder` — wall-clock
  budgets and structured solve events (see :mod:`repro.solver.telemetry`).
* :mod:`repro.solver.benders` — L-shaped decomposition for two-stage
  stochastic programs.
"""

from .expr import Constraint, ConstraintSense, LinExpr, Variable, VarType, lin_sum
from .model import (
    CompiledProblem,
    Model,
    ObjectiveSense,
    compile_cache_stats,
    reset_compile_cache,
    reset_compile_cache_stats,
)
from .result import SolverResult, SolverStatus
from .telemetry import Deadline, EventRecorder, SolveEvent, Telemetry
from .interface import BACKENDS, solve, solve_compiled
from .branch_bound import BranchAndBoundOptions, branch_and_bound
from .presolve import PresolveResult, presolve
from .simplex import SIMPLEX_ENGINES, resolve_engine, solve_lp_simplex
from .scipy_backend import scipy_available, solve_lp_scipy, solve_milp_scipy
from .cuts import generate_gmi_cuts, strengthen_with_gomory_cuts
from .sensitivity import SensitivityReport, lp_sensitivity

__all__ = [
    "Constraint",
    "ConstraintSense",
    "LinExpr",
    "Variable",
    "VarType",
    "lin_sum",
    "CompiledProblem",
    "Model",
    "ObjectiveSense",
    "compile_cache_stats",
    "reset_compile_cache",
    "reset_compile_cache_stats",
    "SolverResult",
    "SolverStatus",
    "Deadline",
    "EventRecorder",
    "SolveEvent",
    "Telemetry",
    "BACKENDS",
    "scipy_available",
    "solve",
    "solve_compiled",
    "BranchAndBoundOptions",
    "branch_and_bound",
    "PresolveResult",
    "presolve",
    "solve_lp_simplex",
    "SIMPLEX_ENGINES",
    "resolve_engine",
    "solve_lp_scipy",
    "solve_milp_scipy",
    "generate_gmi_cuts",
    "strengthen_with_gomory_cuts",
    "SensitivityReport",
    "lp_sensitivity",
]
