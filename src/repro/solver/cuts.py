"""Gomory mixed-integer (GMI) cutting planes.

Generates valid inequalities from fractional rows of the optimal simplex
tableau of the LP relaxation and maps them back into original-variable space
so they can be appended to a :class:`~repro.solver.model.CompiledProblem` as
ordinary ``<=`` rows.  Used as an optional root-node strengthening step by
:func:`repro.solver.branch_bound.branch_and_bound` and exercised directly by
the solver ablation benchmark.

The GMI cut for a tableau row ``x_B(i) + sum_j a_ij x_j = b_i`` with basic
integer variable at fractional value (``f0 = frac(b_i)``) is::

    sum_{j integer}    g(f_j) x_j  +  sum_{j continuous} h(a_ij) x_j  >=  f0

with ``f_j = frac(a_ij)``, ``g(f) = f`` if ``f <= f0`` else
``f0 (1-f) / (1-f0)``, and ``h(a) = a`` if ``a >= 0`` else
``f0 a / (f0 - 1)``.

Cuts read the optimal tableau through the solver result's ``extra
["tableau"]`` object; the revised engine's
:class:`~repro.solver.revised.RevisedTableau` materializes the dense rows
lazily on first access, so the cost is only paid when cutting is on.

Because the simplex works in shifted/slacked standard form, every
standard-form column is an affine function of the original variables; the
cut is translated through those affine maps.  Problems containing free
(split) variables are left untouched — the affine map does not exist for a
split pair — which is fine here: every DRRP/SRRP variable is nonnegative.
"""

from __future__ import annotations

import math
from dataclasses import replace as dc_replace

import numpy as np

from .model import CompiledProblem
from .simplex import SimplexTableau, StandardForm, solve_lp_simplex
from .result import SolverStatus
from .telemetry import Deadline, Telemetry

__all__ = ["generate_gmi_cuts", "strengthen_with_gomory_cuts"]

_FRACTION_TOL = 1e-6


def _frac(v: np.ndarray | float):
    return v - np.floor(v)


def _column_affine_maps(problem: CompiledProblem, sf: StandardForm) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Affine map ``x_std[q] = W[q] @ x + d[q]`` for every standard column.

    Returns ``(W, d, is_int)`` where ``is_int[q]`` marks columns that are
    integral for every feasible integer point, or ``None`` when a free
    variable was split (no affine map exists).
    """
    n = problem.num_vars
    if np.any(sf.neg >= 0):
        return None

    m_ub = problem.A_ub.shape[0]
    n_total = sf.A.shape[1]
    W = np.zeros((n_total, n))
    d = np.zeros(n_total)
    is_int = np.zeros(n_total, dtype=bool)
    int_mask = problem.integrality.astype(bool)

    def is_integer_scalar(v: float) -> bool:
        return math.isfinite(v) and abs(v - round(v)) < 1e-9

    # structural columns: x_std = sign_j * (x_j - shift_j), where shift is
    # lb (sign +1) or ub (mirrored, sign -1)
    for j in range(n):
        q = sf.pos[j]
        W[q, j] = sf.sign[j]
        d[q] = -sf.sign[j] * sf.shift[j]
        is_int[q] = bool(int_mask[j]) and is_integer_scalar(sf.shift[j])

    # inequality slacks: s_i = b_ub[i] - A_ub[i] @ x
    for i in range(m_ub):
        q = sf.n_structural + i
        W[q] = -problem.A_ub[i]
        d[q] = problem.b_ub[i]
        row = problem.A_ub[i]
        nz = np.nonzero(row)[0]
        is_int[q] = (
            is_integer_scalar(problem.b_ub[i])
            and all(is_integer_scalar(row[j]) and int_mask[j] for j in nz)
        )

    return W, d, is_int


def generate_gmi_cuts(
    problem: CompiledProblem,
    tableau: SimplexTableau,
    sf: StandardForm,
    max_cuts: int = 10,
) -> list[tuple[np.ndarray, float]]:
    """Derive up to ``max_cuts`` GMI cuts as ``(row, rhs)`` meaning ``row @ x <= rhs``.

    Rows are selected by decreasing fractionality of the basic value, the
    standard measure of expected cut strength.
    """
    maps = _column_affine_maps(problem, sf)
    if maps is None:
        return []
    W, d, col_is_int = maps

    T, basis = tableau.T, tableau.basis
    m = T.shape[0] - 1
    int_mask = problem.integrality.astype(bool)

    # Nonbasic columns at their upper bound are complemented (z = u - x_std)
    # so every nonbasic variable in the GMI derivation is zero at the vertex:
    # the tableau coefficient negates, the affine map reflects through u, and
    # integrality additionally requires an integral bound.
    at_upper = (
        tableau.at_upper[: tableau.n]
        if tableau.at_upper is not None
        else np.zeros(tableau.n, dtype=bool)
    )
    if at_upper.any():
        W = W.copy()
        d = d.copy()
        col_is_int = col_is_int.copy()
        u_std = sf.u[: tableau.n]
        up = np.nonzero(at_upper)[0]
        W[up] = -W[up]
        d[up] = u_std[up] - d[up]
        col_is_int[up] &= np.abs(u_std[up] - np.round(u_std[up])) < 1e-9

    # Which basic rows correspond to integral standard columns at fractional value?
    rows = []
    for i in range(m):
        q = basis[i]
        if q >= W.shape[0] or not col_is_int[q]:
            continue
        # The basic column must map to an integer-constrained original var or
        # integral slack; fractional basic value then yields a cut.
        f0 = _frac(T[i, -1])
        if _FRACTION_TOL < f0 < 1 - _FRACTION_TOL:
            rows.append((abs(f0 - 0.5), i, f0))
    rows.sort()

    cuts: list[tuple[np.ndarray, float]] = []
    nonbasic = np.ones(tableau.n, dtype=bool)
    nonbasic[basis] = False
    for _, i, f0 in rows[:max_cuts]:
        coeffs = np.zeros(tableau.n)
        arow = np.where(at_upper, -T[i, :-1], T[i, :-1])
        for q in np.nonzero(nonbasic & (np.abs(arow) > 1e-12))[0]:
            a = arow[q]
            if col_is_int[q]:
                f = _frac(a)
                coeffs[q] = f if f <= f0 + 1e-12 else f0 * (1.0 - f) / (1.0 - f0)
            else:
                coeffs[q] = a if a >= 0 else f0 * a / (f0 - 1.0)
        # Cut in standard space: coeffs @ x_std >= f0.  Map to original space.
        w = coeffs @ W           # length n
        const = float(coeffs @ d)
        # coeffs@x_std = w@x + const >= f0  ->  -w@x <= const - f0
        cuts.append((-w, const - f0))
    return cuts


def strengthen_with_gomory_cuts(
    problem: CompiledProblem,
    max_rounds: int = 5,
    cuts_per_round: int = 10,
    deadline: Deadline | None = None,
    telemetry: Telemetry | None = None,
) -> CompiledProblem:
    """Iteratively append GMI cuts at the root LP until none apply.

    Returns a new problem with extra ``<=`` rows; the feasible integer set is
    unchanged (cuts are valid), only the LP relaxation tightens.  Falls back
    to returning the input unchanged when the simplex cannot produce a
    tableau (e.g. degenerate terminations).  The shared ``deadline`` is
    polled before every round (and inside each round's LP solve), so cut
    generation never eats the whole solve budget.
    """
    current = problem
    int_mask = problem.integrality.astype(bool)
    if not int_mask.any():
        return problem
    total = 0
    for round_no in range(max_rounds):
        if deadline is not None and deadline.expired():
            if telemetry:
                telemetry.emit("deadline_exceeded", where="gomory_cuts", rounds=round_no)
            break
        res = solve_lp_simplex(current, deadline=deadline, telemetry=telemetry)
        if res.status is not SolverStatus.OPTIMAL:
            break
        frac = np.abs(res.x - np.round(res.x))
        if not np.any(int_mask & (frac > _FRACTION_TOL)):
            break  # LP optimum already integral
        tableau = res.extra.get("tableau")
        sf = res.extra.get("standard_form")
        if tableau is None or sf is None:
            break
        cuts = generate_gmi_cuts(current, tableau, sf, max_cuts=cuts_per_round)
        # Keep only cuts actually violated by the LP point (guards numerics).
        violated = [(w, r) for (w, r) in cuts if float(w @ res.x) > r + 1e-7]
        if telemetry:
            telemetry.emit(
                "cut_round", round=round_no, generated=len(cuts),
                added=len(violated), lp_objective=res.objective,
            )
        if not violated:
            break
        rows = np.array([w for w, _ in violated])
        rhs = np.array([r for _, r in violated])
        current = dc_replace(
            current,
            A_ub=np.vstack([current.A_ub, rows]) if current.A_ub.size else rows,
            b_ub=np.concatenate([current.b_ub, rhs]) if current.b_ub.size else rhs,
        )
        total += len(violated)
    if total:
        current = dc_replace(current)
    return current
