"""Optimization model container and compilation to matrix form.

A :class:`Model` collects variables, linear constraints and a linear
objective, then compiles them into the dense/sparse arrays the backends
consume (:class:`CompiledProblem`).  This mirrors what AIMMS did for the
paper's authors: the DRRP/SRRP builders in :mod:`repro.core` write equations
essentially as they appear in the paper and leave standard-form bookkeeping
to this module.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from .expr import Constraint, ConstraintSense, LinExpr, Variable, VarType

__all__ = [
    "ObjectiveSense",
    "Model",
    "CompiledProblem",
    "compile_cache_stats",
    "reset_compile_cache",
    "reset_compile_cache_stats",
]

#: Module-level LRU of compiled matrices keyed by structural digest, shared
#: across Model instances so the planning service recompiles a resubmitted
#: model zero times.  Small (structures are arrays, not tableaux) and
#: lock-guarded because the service solves on worker threads.
_COMPILE_CACHE: "OrderedDict[str, CompiledProblem]" = OrderedDict()
_COMPILE_CACHE_MAX = 32
_COMPILE_CACHE_LOCK = threading.Lock()

#: Second-level LRU keyed on the *shape* digest (sparsity pattern only, no
#: coefficient values).  A fleet of tenants builds thousands of models that
#: differ only in demands/prices; their matrices differ but the row
#: partition and COO index arrays are identical, so a shape hit skips the
#: per-row Python assembly and reduces compilation to value scatters.
_SHAPE_CACHE: "OrderedDict[str, _CompiledShape]" = OrderedDict()
_SHAPE_CACHE_MAX = 64

_COMPILE_STATS = {
    "compiles": 0,       # total compile() calls
    "instance_hits": 0,  # unmodified model recompiled -> per-instance cache
    "digest_hits": 0,    # identical values -> module-level compiled LRU
    "shape_hits": 0,     # identical sparsity pattern -> index-array reuse
    "full_builds": 0,    # cold: row partition + index arrays built from scratch
}


def compile_cache_stats() -> dict[str, int]:
    """Snapshot of the compile-cache counters (see ``_COMPILE_STATS``)."""
    with _COMPILE_CACHE_LOCK:
        return dict(_COMPILE_STATS)


def reset_compile_cache_stats() -> None:
    """Zero the compile-cache counters (benchmarks call this per leg)."""
    with _COMPILE_CACHE_LOCK:
        for key in _COMPILE_STATS:
            _COMPILE_STATS[key] = 0


def reset_compile_cache() -> None:
    """Drop the module-level digest and shape LRUs and zero the counters.

    Tests that assert on cold-compile behaviour need this: the LRUs are
    process-wide, so without it any same-shape model compiled earlier in
    the process turns an expected ``full_build`` into a cache hit.
    """
    with _COMPILE_CACHE_LOCK:
        _COMPILE_CACHE.clear()
        _SHAPE_CACHE.clear()
        for key in _COMPILE_STATS:
            _COMPILE_STATS[key] = 0


def _bump(counter: str) -> None:
    with _COMPILE_CACHE_LOCK:
        _COMPILE_STATS[counter] += 1


@dataclass(frozen=True)
class _CompiledShape:
    """Reusable sparsity pattern of a compiled model.

    ``ub_rows``/``eq_rows`` hold ``(constraint_index, row_sign)`` in block
    order; the ``ri``/``ci`` arrays are the COO scatter indices for each
    block; ``obj_ci`` the objective's column indices in term-iteration
    order.  Value extraction at fill time walks the same iteration order
    the shape digest was computed from, so columns always line up.
    """

    n: int
    ub_rows: tuple[tuple[int, float], ...]
    eq_rows: tuple[int, ...]
    ub_ri: np.ndarray
    ub_ci: np.ndarray
    eq_ri: np.ndarray
    eq_ci: np.ndarray
    obj_ci: np.ndarray


class ObjectiveSense:
    MINIMIZE = "min"
    MAXIMIZE = "max"


@dataclass
class CompiledProblem:
    """Matrix form of a model:  optimize ``c @ x + c0``.

    Subject to ``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq`` and
    ``lb <= x <= ub``; entries of ``integrality`` are 1 where the variable
    must be integral.  ``sense`` is ``+1`` for minimize (backends always
    minimize; a maximize model is compiled with negated ``c`` and the flip is
    undone when reading the objective back).
    """

    c: np.ndarray
    c0: float
    A_ub: np.ndarray
    b_ub: np.ndarray
    A_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    maximize: bool
    variables: list[Variable] = field(default_factory=list)

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]

    @property
    def num_constraints(self) -> int:
        return self.A_ub.shape[0] + self.A_eq.shape[0]

    def objective_value(self, x: np.ndarray) -> float:
        """Objective in the *model's* sense (undoes the internal negation)."""
        raw = float(self.c @ x) + self.c0
        return -raw if self.maximize else raw

    def copy(self, variables: list[Variable] | None = None) -> "CompiledProblem":
        """Deep copy of the matrix data (cache hits must not alias arrays).

        ``variables`` optionally replaces the variable list, so a cached
        structure can be handed out under a different model's (identically
        shaped) variables.
        """
        return CompiledProblem(
            c=self.c.copy(), c0=self.c0,
            A_ub=self.A_ub.copy(), b_ub=self.b_ub.copy(),
            A_eq=self.A_eq.copy(), b_eq=self.b_eq.copy(),
            lb=self.lb.copy(), ub=self.ub.copy(),
            integrality=self.integrality.copy(), maximize=self.maximize,
            variables=list(self.variables) if variables is None else list(variables),
        )

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Check constraint and bound satisfaction of a candidate point."""
        if np.any(x < self.lb - tol) or np.any(x > self.ub + tol):
            return False
        if self.A_ub.size and np.any(self.A_ub @ x > self.b_ub + tol):
            return False
        if self.A_eq.size and np.any(np.abs(self.A_eq @ x - self.b_eq) > tol):
            return False
        mask = self.integrality.astype(bool)
        if mask.any() and np.any(np.abs(x[mask] - np.round(x[mask])) > tol):
            return False
        return True


class Model:
    """A mixed-integer linear program under construction.

    Examples
    --------
    >>> m = Model("lot-sizing")
    >>> x = m.add_var("x", lb=0)
    >>> y = m.add_var("y", vtype="binary")
    >>> m.add_constr(x <= 10 * y)
    >>> m.set_objective(3 * x - 5 * y, sense="min")
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense: str = ObjectiveSense.MINIMIZE
        self._names: set[str] = set()
        # Mutation counter driving compile() caching: every structural edit
        # bumps it, so a stale cached compilation can never be returned.
        self._version = 0
        self._compiled_version = -1
        self._compiled: CompiledProblem | None = None

    # -- construction --------------------------------------------------------
    def add_var(
        self,
        name: str | None = None,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: str | VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a decision variable.

        ``vtype`` accepts a :class:`VarType` or the strings ``"continuous"``,
        ``"integer"``, ``"binary"``.
        """
        if isinstance(vtype, str):
            vtype = VarType(vtype)
        if name is None:
            name = f"x{len(self.variables)}"
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Variable(name, index=len(self.variables), lb=lb, ub=ub, vtype=vtype)
        self.variables.append(var)
        self._names.add(name)
        self._version += 1
        return var

    def add_vars(self, count: int, prefix: str, **kwargs) -> list[Variable]:
        """Create ``count`` variables named ``prefix[0] .. prefix[count-1]``."""
        return [self.add_var(f"{prefix}[{i}]", **kwargs) for i in range(count)]

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built by comparing expressions."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constr expects a Constraint (did the comparison collapse "
                "to a bool? compare LinExpr objects, not numbers)"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        self._version += 1
        return constraint

    def set_objective(self, expr, sense: str = ObjectiveSense.MINIMIZE) -> None:
        """Set the linear objective and its sense (``"min"`` or ``"max"``)."""
        self.objective = LinExpr._coerce(expr)
        if sense not in (ObjectiveSense.MINIMIZE, ObjectiveSense.MAXIMIZE):
            raise ValueError(f"unknown objective sense {sense!r}")
        self.sense = sense
        self._version += 1

    # -- introspection --------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.is_integral)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars} "
            f"(int={self.num_integer_vars}), constrs={self.num_constraints})"
        )

    # -- compilation -----------------------------------------------------------
    def _structure_digest(self) -> str:
        """Content digest of everything :meth:`compile` reads (names excluded).

        Two models with identical structure — same bounds, vtypes,
        coefficients, senses, objective — digest identically regardless of
        variable/constraint naming, mirroring the label-invariance of the
        service plan cache.
        """
        from repro.serialize import result_digest

        payload = {
            "vars": [(v.lb, v.ub, v.vtype.value) for v in self.variables],
            "constrs": [
                (
                    c.sense.value,
                    c.rhs,
                    sorted((v.index, coef) for v, coef in c.expr.terms.items()),
                )
                for c in self.constraints
            ],
            "objective": {
                "sense": self.sense,
                "constant": self.objective.constant,
                "terms": sorted((v.index, coef) for v, coef in self.objective.terms.items()),
            },
        }
        return result_digest(payload)

    def _shape_digest(self) -> str:
        """Digest of the sparsity pattern only — no coefficient values.

        Covers everything :class:`_CompiledShape` encodes: variable count,
        constraint senses in order, each row's column indices in *term
        iteration order* (so two models digesting equal are guaranteed to
        scatter values into the same slots), and the objective's column
        order and sense.  Bounds, vtypes, rhs and coefficients are values
        and are filled per model.
        """
        from repro.serialize import result_digest

        payload = {
            "n": len(self.variables),
            "rows": [
                (c.sense.value, tuple(v.index for v in c.expr.terms))
                for c in self.constraints
            ],
            "objective": (self.sense, tuple(v.index for v in self.objective.terms)),
        }
        return result_digest(payload)

    def compile(self) -> CompiledProblem:
        """Compile to matrix form; maximize models get ``c`` negated.

        Results are cached three ways and always returned as defensive
        copies (callers mutate bounds in place during branching/presolve):

        * per instance, keyed on the mutation counter, so back-to-back
          solves of an unmodified model skip matrix assembly entirely;
        * in a small module-level LRU keyed on the structural digest
          (:mod:`repro.serialize`), so rebuilding the *same* model — e.g. a
          replan of an identical planning request — also hits;
        * in a module-level shape LRU keyed on the sparsity pattern alone,
          so same-shape models with different coefficients (a fleet of
          tenants) reuse the row partition and COO index arrays and only
          pay for value scatters.
        """
        _bump("compiles")
        if self._compiled is not None and self._compiled_version == self._version:
            _bump("instance_hits")
            return self._compiled.copy(variables=self.variables)

        digest = self._structure_digest()
        with _COMPILE_CACHE_LOCK:
            cached = _COMPILE_CACHE.get(digest)
            if cached is not None:
                _COMPILE_CACHE.move_to_end(digest)
        if cached is not None:
            _bump("digest_hits")
            self._compiled = cached.copy(variables=self.variables)
            self._compiled_version = self._version
            return self._compiled.copy(variables=self.variables)

        shape_key = self._shape_digest()
        with _COMPILE_CACHE_LOCK:
            shape = _SHAPE_CACHE.get(shape_key)
            if shape is not None:
                _SHAPE_CACHE.move_to_end(shape_key)
        if shape is not None:
            _bump("shape_hits")
        else:
            _bump("full_builds")
            shape = self._build_shape()
            with _COMPILE_CACHE_LOCK:
                _SHAPE_CACHE[shape_key] = shape
                _SHAPE_CACHE.move_to_end(shape_key)
                while len(_SHAPE_CACHE) > _SHAPE_CACHE_MAX:
                    _SHAPE_CACHE.popitem(last=False)

        compiled = self._compile_with_shape(shape)
        self._compiled = compiled
        self._compiled_version = self._version
        with _COMPILE_CACHE_LOCK:
            _COMPILE_CACHE[digest] = compiled.copy()
            _COMPILE_CACHE.move_to_end(digest)
            while len(_COMPILE_CACHE) > _COMPILE_CACHE_MAX:
                _COMPILE_CACHE.popitem(last=False)
        return compiled.copy(variables=self.variables)

    def _compile_uncached(self) -> CompiledProblem:
        """Cold compile with no cache participation (kept for direct use)."""
        return self._compile_with_shape(self._build_shape())

    def _build_shape(self) -> _CompiledShape:
        """Partition rows into blocks and precompute the COO index arrays."""
        n = len(self.variables)
        # GE rows fold into the <= block with a -1 row sign applied to the
        # coefficient values — no negated dict copies.
        ub_rows: list[tuple[int, float]] = []
        eq_rows: list[int] = []
        for idx, constr in enumerate(self.constraints):
            if constr.sense is ConstraintSense.LE:
                ub_rows.append((idx, 1.0))
            elif constr.sense is ConstraintSense.GE:
                ub_rows.append((idx, -1.0))
            else:
                eq_rows.append(idx)

        def indices(row_ids):
            nnz = sum(len(self.constraints[i].expr.terms) for i in row_ids)
            ri = np.empty(nnz, dtype=np.intp)
            ci = np.empty(nnz, dtype=np.intp)
            k = 0
            for row, i in enumerate(row_ids):
                terms = self.constraints[i].expr.terms
                t = len(terms)
                ri[k : k + t] = row
                ci[k : k + t] = np.fromiter((v.index for v in terms), dtype=np.intp, count=t)
                k += t
            return ri, ci

        ub_ri, ub_ci = indices([i for i, _ in ub_rows])
        eq_ri, eq_ci = indices(eq_rows)
        obj_terms = self.objective.terms
        obj_ci = np.fromiter(
            (v.index for v in obj_terms), dtype=np.intp, count=len(obj_terms)
        )
        return _CompiledShape(
            n=n, ub_rows=tuple(ub_rows), eq_rows=tuple(eq_rows),
            ub_ri=ub_ri, ub_ci=ub_ci, eq_ri=eq_ri, eq_ci=eq_ci, obj_ci=obj_ci,
        )

    def _compile_with_shape(self, shape: _CompiledShape) -> CompiledProblem:
        """Fill coefficient values into a (possibly shared) sparsity pattern."""
        n = shape.n
        c = np.zeros(n)
        obj_terms = self.objective.terms
        if obj_terms:
            c[shape.obj_ci] = np.fromiter(obj_terms.values(), dtype=float, count=len(obj_terms))
        maximize = self.sense == ObjectiveSense.MAXIMIZE
        if maximize:
            c = -c
        c0 = -self.objective.constant if maximize else self.objective.constant

        A_ub = np.zeros((len(shape.ub_rows), n))
        b_ub = np.empty(len(shape.ub_rows))
        vals = np.empty(shape.ub_ci.shape[0])
        k = 0
        for row, (i, sign) in enumerate(shape.ub_rows):
            constr = self.constraints[i]
            terms = constr.expr.terms
            t = len(terms)
            vals[k : k + t] = np.fromiter(terms.values(), dtype=float, count=t)
            if sign != 1.0:
                vals[k : k + t] *= sign
            b_ub[row] = constr.rhs * sign
            k += t
        # LinExpr terms are keyed by variable, so (row, col) pairs are
        # unique and one fancy assignment scatters the whole COO batch.
        A_ub[shape.ub_ri, shape.ub_ci] = vals

        A_eq = np.zeros((len(shape.eq_rows), n))
        b_eq = np.empty(len(shape.eq_rows))
        vals = np.empty(shape.eq_ci.shape[0])
        k = 0
        for row, i in enumerate(shape.eq_rows):
            constr = self.constraints[i]
            terms = constr.expr.terms
            t = len(terms)
            vals[k : k + t] = np.fromiter(terms.values(), dtype=float, count=t)
            b_eq[row] = constr.rhs
            k += t
        A_eq[shape.eq_ri, shape.eq_ci] = vals

        lb = np.fromiter((v.lb for v in self.variables), dtype=float, count=n)
        ub = np.fromiter((v.ub for v in self.variables), dtype=float, count=n)
        integrality = np.fromiter(
            (1 if v.is_integral else 0 for v in self.variables), dtype=int, count=n
        )
        return CompiledProblem(
            c=c, c0=c0, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
            lb=lb, ub=ub, integrality=integrality, maximize=maximize,
            variables=list(self.variables),
        )
