"""Optimization model container and compilation to matrix form.

A :class:`Model` collects variables, linear constraints and a linear
objective, then compiles them into the dense/sparse arrays the backends
consume (:class:`CompiledProblem`).  This mirrors what AIMMS did for the
paper's authors: the DRRP/SRRP builders in :mod:`repro.core` write equations
essentially as they appear in the paper and leave standard-form bookkeeping
to this module.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .expr import Constraint, ConstraintSense, LinExpr, Variable, VarType

__all__ = ["ObjectiveSense", "Model", "CompiledProblem"]


class ObjectiveSense:
    MINIMIZE = "min"
    MAXIMIZE = "max"


@dataclass
class CompiledProblem:
    """Matrix form of a model:  optimize ``c @ x + c0``.

    Subject to ``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq`` and
    ``lb <= x <= ub``; entries of ``integrality`` are 1 where the variable
    must be integral.  ``sense`` is ``+1`` for minimize (backends always
    minimize; a maximize model is compiled with negated ``c`` and the flip is
    undone when reading the objective back).
    """

    c: np.ndarray
    c0: float
    A_ub: np.ndarray
    b_ub: np.ndarray
    A_eq: np.ndarray
    b_eq: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    maximize: bool
    variables: list[Variable] = field(default_factory=list)

    @property
    def num_vars(self) -> int:
        return self.c.shape[0]

    @property
    def num_constraints(self) -> int:
        return self.A_ub.shape[0] + self.A_eq.shape[0]

    def objective_value(self, x: np.ndarray) -> float:
        """Objective in the *model's* sense (undoes the internal negation)."""
        raw = float(self.c @ x) + self.c0
        return -raw if self.maximize else raw

    def is_feasible(self, x: np.ndarray, tol: float = 1e-6) -> bool:
        """Check constraint and bound satisfaction of a candidate point."""
        if np.any(x < self.lb - tol) or np.any(x > self.ub + tol):
            return False
        if self.A_ub.size and np.any(self.A_ub @ x > self.b_ub + tol):
            return False
        if self.A_eq.size and np.any(np.abs(self.A_eq @ x - self.b_eq) > tol):
            return False
        mask = self.integrality.astype(bool)
        if mask.any() and np.any(np.abs(x[mask] - np.round(x[mask])) > tol):
            return False
        return True


class Model:
    """A mixed-integer linear program under construction.

    Examples
    --------
    >>> m = Model("lot-sizing")
    >>> x = m.add_var("x", lb=0)
    >>> y = m.add_var("y", vtype="binary")
    >>> m.add_constr(x <= 10 * y)
    >>> m.set_objective(3 * x - 5 * y, sense="min")
    """

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense: str = ObjectiveSense.MINIMIZE
        self._names: set[str] = set()

    # -- construction --------------------------------------------------------
    def add_var(
        self,
        name: str | None = None,
        lb: float = 0.0,
        ub: float = math.inf,
        vtype: str | VarType = VarType.CONTINUOUS,
    ) -> Variable:
        """Create and register a decision variable.

        ``vtype`` accepts a :class:`VarType` or the strings ``"continuous"``,
        ``"integer"``, ``"binary"``.
        """
        if isinstance(vtype, str):
            vtype = VarType(vtype)
        if name is None:
            name = f"x{len(self.variables)}"
        if name in self._names:
            raise ValueError(f"duplicate variable name {name!r}")
        var = Variable(name, index=len(self.variables), lb=lb, ub=ub, vtype=vtype)
        self.variables.append(var)
        self._names.add(name)
        return var

    def add_vars(self, count: int, prefix: str, **kwargs) -> list[Variable]:
        """Create ``count`` variables named ``prefix[0] .. prefix[count-1]``."""
        return [self.add_var(f"{prefix}[{i}]", **kwargs) for i in range(count)]

    def add_constr(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built by comparing expressions."""
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constr expects a Constraint (did the comparison collapse "
                "to a bool? compare LinExpr objects, not numbers)"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr, sense: str = ObjectiveSense.MINIMIZE) -> None:
        """Set the linear objective and its sense (``"min"`` or ``"max"``)."""
        self.objective = LinExpr._coerce(expr)
        if sense not in (ObjectiveSense.MINIMIZE, ObjectiveSense.MAXIMIZE):
            raise ValueError(f"unknown objective sense {sense!r}")
        self.sense = sense

    # -- introspection --------------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.is_integral)

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_vars} "
            f"(int={self.num_integer_vars}), constrs={self.num_constraints})"
        )

    # -- compilation -----------------------------------------------------------
    def compile(self) -> CompiledProblem:
        """Compile to matrix form; maximize models get ``c`` negated."""
        n = len(self.variables)
        c = np.zeros(n)
        for var, coef in self.objective.terms.items():
            c[var.index] = coef
        maximize = self.sense == ObjectiveSense.MAXIMIZE
        if maximize:
            c = -c
        c0 = -self.objective.constant if maximize else self.objective.constant

        ub_rows: list[tuple[dict[Variable, float], float]] = []
        eq_rows: list[tuple[dict[Variable, float], float]] = []
        for constr in self.constraints:
            terms, rhs = constr.expr.terms, constr.rhs
            if constr.sense is ConstraintSense.LE:
                ub_rows.append((terms, rhs))
            elif constr.sense is ConstraintSense.GE:
                ub_rows.append(({v: -coef for v, coef in terms.items()}, -rhs))
            else:
                eq_rows.append((terms, rhs))

        def build(rows):
            A = np.zeros((len(rows), n))
            b = np.zeros(len(rows))
            for i, (terms, rhs) in enumerate(rows):
                for var, coef in terms.items():
                    A[i, var.index] = coef
                b[i] = rhs
            return A, b

        A_ub, b_ub = build(ub_rows)
        A_eq, b_eq = build(eq_rows)
        lb = np.array([v.lb for v in self.variables])
        ub = np.array([v.ub for v in self.variables])
        integrality = np.array([1 if v.is_integral else 0 for v in self.variables])
        return CompiledProblem(
            c=c, c0=c0, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq,
            lb=lb, ub=ub, integrality=integrality, maximize=maximize,
            variables=list(self.variables),
        )
