"""Process-level parallelism helpers (pool mapping, deterministic seeding)."""

from .pool import current_telemetry, default_workers, parallel_map
from repro.stats.rng import spawn_rngs

__all__ = ["current_telemetry", "default_workers", "parallel_map", "spawn_rngs"]
