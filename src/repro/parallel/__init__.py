"""Process-level parallelism helpers (pool mapping, deterministic seeding)."""

from .pool import (
    PARALLEL_DEPTH_ENV,
    current_telemetry,
    default_workers,
    in_parallel_worker,
    parallel_map,
    serial_guard,
)
from repro.stats.rng import spawn_rngs

__all__ = [
    "PARALLEL_DEPTH_ENV",
    "current_telemetry",
    "default_workers",
    "in_parallel_worker",
    "parallel_map",
    "serial_guard",
    "spawn_rngs",
]
