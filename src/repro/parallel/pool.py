"""Process-pool mapping for embarrassingly parallel sweeps.

Used by the auto-ARIMA grid search and the experiment harness when a sweep
has many independent cells (e.g. the Fig. 11 sensitivity grid).  Keeps the
dependency surface tiny: :mod:`concurrent.futures` with chunking, ordered
results, and a serial fallback for ``n_workers <= 1`` (which also makes unit
tests deterministic and debuggable).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "default_workers"]


def default_workers(cap: int = 8) -> int:
    """A sensible worker count: physical parallelism minus one, capped.

    The ``REPRO_WORKERS`` environment variable overrides the heuristic
    (still floored at 1): set ``REPRO_WORKERS=1`` to force every sweep
    serial — e.g. in CI containers whose advertised CPU count exceeds the
    actual quota — or a higher value to opt into more parallelism than the
    default cap allows.  Non-numeric values are ignored.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    cpus = os.cpu_count() or 1
    return max(1, min(cap, cpus - 1))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    n_workers: int | None = None,
    chunksize: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    ``n_workers <= 1`` runs serially in-process (no pickling requirements);
    otherwise a :class:`ProcessPoolExecutor` is used, with a chunksize of
    roughly ``len(items) / (4 * workers)`` so scheduling overhead stays small
    relative to task cost.

    ``fn`` and the items must be picklable in the parallel path (module-level
    functions, plain data) — the usual multiprocessing contract.
    """
    items = list(items)
    if n_workers is None:
        n_workers = default_workers()
    # Never spawn more processes than there are items: a 2-item sweep on an
    # 8-worker default would pay 6 process startups for nothing.
    n_workers = min(n_workers, len(items))
    if n_workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * n_workers))
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
