"""Process-pool mapping for embarrassingly parallel sweeps.

Used by the auto-ARIMA grid search, the experiment harness, and parallel
fuzz shards.  Keeps the dependency surface tiny: :mod:`concurrent.futures`
with chunking, ordered results, and a serial fallback for
``n_workers <= 1`` (which also makes unit tests deterministic and
debuggable).

Telemetry across process boundaries
-----------------------------------

Events emitted inside worker processes used to be silently dropped — the
parent's :class:`~repro.solver.telemetry.Telemetry` hub lives in the
parent.  Passing ``telemetry=hub`` to :func:`parallel_map` fixes that:

* each task runs with a process-local capture hub installed as the
  *ambient* hub (:func:`current_telemetry`), which the task body may
  hand to any ``listener=`` / ``telemetry=`` parameter;
* captured events travel back with the task result (plain tuples, so the
  usual pickling contract holds) and are re-emitted into the parent hub
  **in item order**, tagged with a compact ``worker`` id (0, 1, ... by
  first appearance) and the in-worker timestamp as ``worker_t``
  (monotone on a per-process epoch, so consecutive tasks on one worker
  stay ordered and :class:`repro.obs.spans.Tracer` can re-time them);
* the serial path captures the same way with ``worker=0``, so listeners
  observe one well-ordered merged stream either way (the parent hub
  clamps timestamps monotone).

The caller's ambient :class:`repro.obs.propagate.TraceContext` (if any)
is pickled into the task wrapper: each task runs under a *child* context
(``current_trace()`` works inside the worker), re-emitted events are
tagged with the trace id, and an **unsampled** context disables event
capture in the workers entirely — the sampling decision made at the root
holds across the fork.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager, nullcontext
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs.propagate import TraceContext, activate, current_trace
from repro.solver.telemetry import EventRecorder, Telemetry

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "parallel_map",
    "default_workers",
    "current_telemetry",
    "in_parallel_worker",
    "serial_guard",
    "PARALLEL_DEPTH_ENV",
]

#: Process-local ambient hub installed while a captured task runs.
_ambient: Telemetry | None = None

#: Environment marker set in every parallel_map child process (alongside
#: ``REPRO_WORKERS``): its value is the nesting depth, and any nonzero
#: depth forces nested ``parallel_map`` calls to run serially.
PARALLEL_DEPTH_ENV = "REPRO_PARALLEL_DEPTH"

#: Thread-local nesting marker for in-process workers (service worker
#: threads run solves under :func:`serial_guard`).
_local = threading.local()


def _env_depth() -> int:
    try:
        return max(0, int(os.environ.get(PARALLEL_DEPTH_ENV, "0")))
    except ValueError:
        return 0


def in_parallel_worker() -> bool:
    """True inside a ``parallel_map`` child process or a :func:`serial_guard`.

    ``parallel_map`` checks this to refuse to fork again: a sweep whose
    task bodies themselves call ``parallel_map`` (or a planning-service
    worker running a solver that does) would otherwise multiply processes
    — ``workers ** depth`` of them — instead of doing work.
    """
    return getattr(_local, "depth", 0) > 0 or _env_depth() > 0


@contextmanager
def serial_guard():
    """Mark the current thread as a worker: nested ``parallel_map`` runs serial.

    Used by in-process worker pools (e.g. the planning service), whose
    parallelism budget is already spent on the pool itself.  Re-entrant,
    and scoped to the calling thread.
    """
    _local.depth = getattr(_local, "depth", 0) + 1
    try:
        yield
    finally:
        _local.depth -= 1


def _child_init() -> None:
    """ProcessPoolExecutor initializer: stamp the child's nesting depth."""
    os.environ[PARALLEL_DEPTH_ENV] = str(_env_depth() + 1)


def current_telemetry() -> Telemetry | None:
    """The hub for the task currently running under :func:`parallel_map`.

    ``None`` outside a telemetry-enabled ``parallel_map`` call (including
    always in the disabled path), so task bodies can unconditionally write
    ``run_fuzz(cfg, listener=current_telemetry())``.
    """
    return _ambient


def default_workers(cap: int = 8) -> int:
    """A sensible worker count: physical parallelism minus one, capped.

    The ``REPRO_WORKERS`` environment variable overrides the heuristic
    (still floored at 1): set ``REPRO_WORKERS=1`` to force every sweep
    serial — e.g. in CI containers whose advertised CPU count exceeds the
    actual quota — or a higher value to opt into more parallelism than the
    default cap allows.  Non-numeric values are ignored.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    cpus = os.cpu_count() or 1
    return max(1, min(cap, cpus - 1))


#: Per-process epoch for ``worker_t`` timestamps: the monotonic clock at
#: this process's first captured task.  Each task gets a fresh capture hub
#: (whose clock restarts at zero), so timestamps are rebased onto this
#: epoch before travelling back — consecutive tasks on one worker then
#: carry one monotone in-worker timeline instead of restarting at zero.
_epoch: float | None = None


class _CapturedTask:
    """Picklable wrapper running ``fn`` under a capture hub.

    Returns ``(result, pid, events)`` where ``events`` is a list of
    ``(kind, t, data)`` tuples — everything plain so it survives the
    multiprocessing round-trip.  ``trace`` (the caller's ambient
    :class:`TraceContext`, pickled along) makes each task run under a
    child context; an unsampled context suppresses capture entirely.
    """

    __slots__ = ("fn", "trace")

    def __init__(self, fn: Callable, trace: TraceContext | None = None) -> None:
        self.fn = fn
        self.trace = trace

    def __call__(self, item):
        global _ambient, _epoch
        start = time.monotonic()
        if _epoch is None:
            _epoch = start
        child = self.trace.child() if self.trace is not None else None
        if child is not None and not child.sampled:
            # Sampling decided "no" at the trace root: run without any
            # capture hub so the worker pays nothing for telemetry.
            with activate(child):
                return self.fn(item), os.getpid(), []
        recorder = EventRecorder()
        hub = Telemetry(listeners=(recorder,))
        previous, _ambient = _ambient, hub
        try:
            with activate(child) if child is not None else nullcontext():
                result = self.fn(item)
        finally:
            _ambient = previous
        base = start - _epoch
        events = [(ev.kind, base + ev.t, ev.data) for ev in recorder.events]
        return result, os.getpid(), events


def _forward(telemetry: Telemetry, outputs, trace: TraceContext | None = None) -> list:
    """Re-emit captured worker events into the parent hub, in item order."""
    results = []
    worker_ids: dict[int, int] = {}
    for result, pid, events in outputs:
        worker = worker_ids.setdefault(pid, len(worker_ids))
        for kind, t, data in events:
            # Doubly-forwarded events (a task body that itself ran a serial
            # parallel_map) already carry worker tags; this hop's tags win.
            data = {k: v for k, v in data.items() if k not in ("worker", "worker_t")}
            if trace is not None:
                data.setdefault("trace_id", trace.trace_id)
            telemetry.emit(kind, worker=worker, worker_t=t, **data)
        results.append(result)
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    n_workers: int | None = None,
    chunksize: int | None = None,
    telemetry: Telemetry | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    ``n_workers <= 1`` runs serially in-process (no pickling requirements);
    otherwise a :class:`ProcessPoolExecutor` is used, with a chunksize of
    roughly ``len(items) / (4 * workers)`` so scheduling overhead stays small
    relative to task cost.

    ``fn`` and the items must be picklable in the parallel path (module-level
    functions, plain data) — the usual multiprocessing contract.

    ``telemetry`` (optional) forwards events emitted by task bodies through
    :func:`current_telemetry` back into the given parent hub, tagged with a
    ``worker`` id — see the module docstring.  The ambient
    :class:`TraceContext` (if one is active) rides along: tasks run under
    child contexts and its sampling decision governs worker-side capture.
    """
    items = list(items)
    if n_workers is None:
        n_workers = default_workers()
    # Never spawn more processes than there are items: a 2-item sweep on an
    # 8-worker default would pay 6 process startups for nothing.
    n_workers = min(n_workers, len(items))
    # Never fork from inside a worker: a nested parallel_map (task body of
    # an outer sweep, or a solve running on a service worker thread) would
    # multiply processes geometrically instead of adding parallelism.
    if n_workers > 1 and in_parallel_worker():
        n_workers = 1
    trace = current_trace()
    if n_workers <= 1 or len(items) <= 1:
        if telemetry is None:
            return [fn(item) for item in items]
        task = _CapturedTask(fn, trace)
        return _forward(telemetry, [task(item) for item in items], trace)
    if chunksize is None:
        chunksize = max(1, len(items) // (4 * n_workers))
    if telemetry is None:
        with ProcessPoolExecutor(max_workers=n_workers, initializer=_child_init) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    task = _CapturedTask(fn, trace)
    with ProcessPoolExecutor(max_workers=n_workers, initializer=_child_init) as pool:
        outputs = list(pool.map(task, items, chunksize=chunksize))
    return _forward(telemetry, outputs, trace)
